package assertion

import (
	"fmt"
	"sort"
	"strings"

	"cspsat/internal/sem"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// Bounded validity: decide whether a pure assertion (one whose truth depends
// only on channel histories and free variables, not on any process) holds
// for *every* history and variable assignment drawn from bounded domains.
//
// The proof checker uses this to discharge the non-process leaves of the
// paper's proofs — facts like "f(<>) ≤ <>" (a single evaluation) or
// "wire ≤ input ⇒ v⌢wire ≤ v⌢input" (quantified over histories and v). It
// is sound for refutation (a counterexample is a real counterexample) and
// complete only up to the bound, which is recorded on every discharged
// obligation; each paper proof additionally cross-checks its conclusion
// with the model checker.

// ValidityConfig bounds the search space of Valid.
type ValidityConfig struct {
	// Env supplies the module (constant arrays, named sets) and NAT width.
	Env sem.Env
	// Funcs resolves registered functions; nil means NewRegistry().
	Funcs *Registry
	// MaxLen bounds the length of each channel history. Zero means 3.
	MaxLen int
	// DefaultDom is the message domain used for channels and variables
	// without a specific entry. Nil means NAT with the Env's sample width.
	DefaultDom value.Domain
	// ChanDom overrides the message domain per channel.
	ChanDom map[string]value.Domain
	// VarDom gives the domain of each free variable; free variables
	// without an entry use DefaultDom.
	VarDom map[string]value.Domain
	// MaxCases caps the total number of (history, assignment) cases
	// evaluated; exceeding it is an error rather than a silent pass.
	// Zero means 1<<22.
	MaxCases int
}

func (c ValidityConfig) maxLen() int {
	if c.MaxLen <= 0 {
		return 3
	}
	return c.MaxLen
}

func (c ValidityConfig) maxCases() int {
	if c.MaxCases <= 0 {
		return 1 << 22
	}
	return c.MaxCases
}

func (c ValidityConfig) domFor(name string, m map[string]value.Domain) value.Domain {
	if m != nil {
		if d, ok := m[name]; ok {
			return d
		}
	}
	if c.DefaultDom != nil {
		return c.DefaultDom
	}
	return value.Nat{SampleWidth: c.Env.NatWidth()}
}

// Counterexample is a falsifying case found by Valid.
type Counterexample struct {
	Hist trace.History
	Vars map[string]value.V
}

// String renders the counterexample deterministically.
func (c *Counterexample) String() string {
	var parts []string
	if len(c.Vars) > 0 {
		names := make([]string, 0, len(c.Vars))
		for n := range c.Vars {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			parts = append(parts, n+"="+c.Vars[n].String())
		}
	}
	parts = append(parts, c.Hist.String())
	return strings.Join(parts, "; ")
}

// Valid exhaustively checks the assertion over all bounded histories of its
// free channels and all bounded assignments of its free variables. It
// returns nil when no counterexample exists within the bounds.
func Valid(a A, cfg ValidityConfig) (*Counterexample, error) {
	chans, err := concreteChans(a)
	if err != nil {
		return nil, err
	}
	fv := FreeVars(a)
	vars := make([]string, 0, len(fv))
	for v := range fv {
		vars = append(vars, v)
	}
	sort.Strings(vars)

	// Pre-enumerate the sequence space per channel and value space per var.
	chanSeqs := make([][][]value.V, len(chans))
	for i, ch := range chans {
		dom := cfg.domFor(string(ch), cfg.ChanDom)
		chanSeqs[i] = allSeqs(dom.Enumerate(), cfg.maxLen())
	}
	varVals := make([][]value.V, len(vars))
	for i, v := range vars {
		varVals[i] = cfg.domFor(v, cfg.VarDom).Enumerate()
		if len(varVals[i]) == 0 {
			return nil, fmt.Errorf("assertion: empty domain for variable %q", v)
		}
	}

	total := 1
	for _, ss := range chanSeqs {
		total *= len(ss)
		if total > cfg.maxCases() {
			return nil, fmt.Errorf("assertion: bounded validity space exceeds %d cases", cfg.maxCases())
		}
	}
	for _, vs := range varVals {
		total *= len(vs)
		if total > cfg.maxCases() {
			return nil, fmt.Errorf("assertion: bounded validity space exceeds %d cases", cfg.maxCases())
		}
	}

	idxC := make([]int, len(chans))
	idxV := make([]int, len(vars))
	funcs := cfg.Funcs
	if funcs == nil {
		funcs = NewRegistry()
	}
	for {
		hist := make(trace.History, len(chans))
		for i, ch := range chans {
			hist[ch] = chanSeqs[i][idxC[i]]
		}
		ctx := NewCtx(cfg.Env, hist, funcs)
		assign := map[string]value.V{}
		for i, v := range vars {
			val := varVals[i][idxV[i]]
			ctx = ctx.Bind(v, val)
			assign[v] = val
		}
		ok, err := Eval(a, ctx)
		if err != nil {
			return nil, fmt.Errorf("assertion: evaluating %s under %s: %w", a, hist, err)
		}
		if !ok {
			return &Counterexample{Hist: hist, Vars: assign}, nil
		}
		if !advance(idxC, chanSeqs, idxV, varVals) {
			return nil, nil
		}
	}
}

// advance increments the mixed-radix counter over (channel seqs, var vals);
// it returns false when the space is exhausted.
func advance(idxC []int, chanSeqs [][][]value.V, idxV []int, varVals [][]value.V) bool {
	for i := range idxC {
		idxC[i]++
		if idxC[i] < len(chanSeqs[i]) {
			return true
		}
		idxC[i] = 0
	}
	for i := range idxV {
		idxV[i]++
		if idxV[i] < len(varVals[i]) {
			return true
		}
		idxV[i] = 0
	}
	return false
}

// allSeqs enumerates every sequence over alphabet of length ≤ maxLen.
func allSeqs(alphabet []value.V, maxLen int) [][]value.V {
	out := [][]value.V{nil}
	frontier := [][]value.V{nil}
	for l := 1; l <= maxLen; l++ {
		var next [][]value.V
		for _, s := range frontier {
			for _, v := range alphabet {
				ext := make([]value.V, len(s)+1)
				copy(ext, s)
				ext[len(s)] = v
				next = append(next, ext)
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

// concreteChans returns the channels of the assertion, failing on wildcard
// (symbolically subscripted) references which bounded validity cannot
// enumerate.
func concreteChans(a A) ([]trace.Chan, error) {
	keys := FreeChans(a)
	out := make([]trace.Chan, 0, len(keys))
	for k := range keys {
		if strings.HasSuffix(k, "[*]") {
			return nil, fmt.Errorf("assertion: symbolically subscripted channel %s; bounded validity cannot enumerate it", k)
		}
		out = append(out, trace.Chan(k))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
