package assertion

import (
	"fmt"
	"strconv"

	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// The substitutions of §2.1 and §3.4:
//
//	R_<>        every channel name replaced by the empty sequence (rule 4)
//	R[e⌢c/c]    channel c replaced by e prefixed to c (rules 5 and 6)
//	R[t/x]      variable x replaced by a term (rule 6's fresh variable, ∀-elim)
//
// All are implemented by a generic term rewrite over the formula.

// mapTerm applies f bottom-up to every term node. Binders are handled by
// the callers (via the bound set threaded through formula mapping).
func mapTerm(t Term, f func(Term) Term) Term {
	switch x := t.(type) {
	case Lit, VarT, ChanT, ConstIndex:
		return f(t)
	case Cons:
		return f(Cons{Head: mapTerm(x.Head, f), Tail: mapTerm(x.Tail, f)})
	case SeqLit:
		elems := make([]Term, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = mapTerm(e, f)
		}
		return f(SeqLit{Elems: elems})
	case Cat:
		return f(Cat{L: mapTerm(x.L, f), R: mapTerm(x.R, f)})
	case Len:
		return f(Len{S: mapTerm(x.S, f)})
	case At:
		return f(At{S: mapTerm(x.S, f), Idx: mapTerm(x.Idx, f)})
	case Arith:
		return f(Arith{Op: x.Op, L: mapTerm(x.L, f), R: mapTerm(x.R, f)})
	case Sum:
		return f(Sum{Var: x.Var, Lo: mapTerm(x.Lo, f), Hi: mapTerm(x.Hi, f), Body: mapTerm(x.Body, f)})
	case Apply:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = mapTerm(a, f)
		}
		return f(Apply{Fn: x.Fn, Args: args})
	default:
		return f(t)
	}
}

// mapFormula applies tf to every term of the formula, respecting nothing —
// binder handling is layered on by the specific substitutions below.
func mapFormula(a A, tf func(Term) Term) A {
	switch x := a.(type) {
	case BoolA:
		return x
	case Cmp:
		return Cmp{Op: x.Op, L: mapTerm(x.L, tf), R: mapTerm(x.R, tf)}
	case Not:
		return Not{Body: mapFormula(x.Body, tf)}
	case And:
		return And{L: mapFormula(x.L, tf), R: mapFormula(x.R, tf)}
	case Or:
		return Or{L: mapFormula(x.L, tf), R: mapFormula(x.R, tf)}
	case Implies:
		return Implies{L: mapFormula(x.L, tf), R: mapFormula(x.R, tf)}
	case ForAllSet:
		return ForAllSet{Var: x.Var, Dom: x.Dom, Body: mapFormula(x.Body, tf)}
	case ExistsSet:
		return ExistsSet{Var: x.Var, Dom: x.Dom, Body: mapFormula(x.Body, tf)}
	case ForAllRange:
		return ForAllRange{Var: x.Var, Lo: mapTerm(x.Lo, tf), Hi: mapTerm(x.Hi, tf), Body: mapFormula(x.Body, tf)}
	case ExistsRange:
		return ExistsRange{Var: x.Var, Lo: mapTerm(x.Lo, tf), Hi: mapTerm(x.Hi, tf), Body: mapFormula(x.Body, tf)}
	case Pred:
		args := make([]Term, len(x.Args))
		for i, t := range x.Args {
			args[i] = mapTerm(t, tf)
		}
		return Pred{Name: x.Name, Args: args}
	default:
		return a
	}
}

// matchChan reports whether a ChanT node denotes the concrete channel c.
// A symbolic subscript (one that is not an integer literal) never matches:
// callers that require exhaustive substitution use ChanRefsDetermined to
// rule such assertions out first.
func matchChan(x ChanT, c trace.Chan) bool {
	name, sub, hasSub := c.ArrayName()
	if x.Sub == nil {
		return !hasSub && x.Name == name
	}
	lit, ok := x.Sub.(Lit)
	if !ok || lit.Val.Kind() != value.KindInt {
		return false
	}
	return hasSub && x.Name == name && lit.Val.AsInt() == sub
}

// SubstChanCons returns R with every occurrence of channel c replaced by
// head⌢c — the paper's R[e⌢c/c] used by the output and input rules. It
// fails if R subscripts the same channel array symbolically, since then
// occurrences of c cannot be decided syntactically.
func SubstChanCons(a A, c trace.Chan, head Term) (A, error) {
	name, _, _ := c.ArrayName()
	if err := checkDetermined(a, name); err != nil {
		return nil, err
	}
	return mapFormula(a, func(t Term) Term {
		if x, ok := t.(ChanT); ok && matchChan(x, c) {
			return Cons{Head: head, Tail: x}
		}
		return t
	}), nil
}

// EmptyAllChans returns R_<>: R with every channel name replaced by the
// constant empty sequence (rule 4, emptiness).
func EmptyAllChans(a A) A {
	return mapFormula(a, func(t Term) Term {
		if _, ok := t.(ChanT); ok {
			return Empty()
		}
		return t
	})
}

// SubstVar returns R with every free occurrence of variable x replaced by
// term r, stopping at binders of the same name (ForAll/Exists/Sum).
func SubstVar(a A, x string, r Term) A {
	return substVarFormula(a, x, r)
}

func substVarTerm(t Term, x string, r Term) Term {
	switch n := t.(type) {
	case VarT:
		if n.Name == x {
			return r
		}
		return t
	case ChanT:
		if n.Sub == nil {
			return t
		}
		return ChanT{Name: n.Name, Sub: substVarTerm(n.Sub, x, r)}
	case ConstIndex:
		return ConstIndex{Name: n.Name, Sub: substVarTerm(n.Sub, x, r)}
	case Cons:
		return Cons{Head: substVarTerm(n.Head, x, r), Tail: substVarTerm(n.Tail, x, r)}
	case SeqLit:
		elems := make([]Term, len(n.Elems))
		for i, e := range n.Elems {
			elems[i] = substVarTerm(e, x, r)
		}
		return SeqLit{Elems: elems}
	case Cat:
		return Cat{L: substVarTerm(n.L, x, r), R: substVarTerm(n.R, x, r)}
	case Len:
		return Len{S: substVarTerm(n.S, x, r)}
	case At:
		return At{S: substVarTerm(n.S, x, r), Idx: substVarTerm(n.Idx, x, r)}
	case Arith:
		return Arith{Op: n.Op, L: substVarTerm(n.L, x, r), R: substVarTerm(n.R, x, r)}
	case Sum:
		out := Sum{Var: n.Var, Lo: substVarTerm(n.Lo, x, r), Hi: substVarTerm(n.Hi, x, r)}
		if n.Var == x {
			out.Body = n.Body
		} else {
			out.Body = substVarTerm(n.Body, x, r)
		}
		return out
	case Apply:
		args := make([]Term, len(n.Args))
		for i, a := range n.Args {
			args[i] = substVarTerm(a, x, r)
		}
		return Apply{Fn: n.Fn, Args: args}
	default:
		return t
	}
}

func substVarFormula(a A, x string, r Term) A {
	switch n := a.(type) {
	case BoolA:
		return a
	case Cmp:
		return Cmp{Op: n.Op, L: substVarTerm(n.L, x, r), R: substVarTerm(n.R, x, r)}
	case Not:
		return Not{Body: substVarFormula(n.Body, x, r)}
	case And:
		return And{L: substVarFormula(n.L, x, r), R: substVarFormula(n.R, x, r)}
	case Or:
		return Or{L: substVarFormula(n.L, x, r), R: substVarFormula(n.R, x, r)}
	case Implies:
		return Implies{L: substVarFormula(n.L, x, r), R: substVarFormula(n.R, x, r)}
	case ForAllSet:
		if n.Var == x {
			return a
		}
		return ForAllSet{Var: n.Var, Dom: n.Dom, Body: substVarFormula(n.Body, x, r)}
	case ExistsSet:
		if n.Var == x {
			return a
		}
		return ExistsSet{Var: n.Var, Dom: n.Dom, Body: substVarFormula(n.Body, x, r)}
	case ForAllRange:
		out := ForAllRange{Var: n.Var, Lo: substVarTerm(n.Lo, x, r), Hi: substVarTerm(n.Hi, x, r)}
		if n.Var == x {
			out.Body = n.Body
		} else {
			out.Body = substVarFormula(n.Body, x, r)
		}
		return out
	case ExistsRange:
		out := ExistsRange{Var: n.Var, Lo: substVarTerm(n.Lo, x, r), Hi: substVarTerm(n.Hi, x, r)}
		if n.Var == x {
			out.Body = n.Body
		} else {
			out.Body = substVarFormula(n.Body, x, r)
		}
		return out
	case Pred:
		args := make([]Term, len(n.Args))
		for i, t := range n.Args {
			args[i] = substVarTerm(t, x, r)
		}
		return Pred{Name: n.Name, Args: args}
	default:
		return a
	}
}

// FreeChans returns the concrete channels mentioned by the assertion. When
// a channel array is subscripted by a non-literal term, the name is
// reported with a trailing "[*]" wildcard entry so callers can treat the
// whole array as mentioned (as rule 8's "all channels mentioned in R"
// requires).
func FreeChans(a A) map[string]bool {
	out := map[string]bool{}
	collect := func(t Term) Term {
		if x, ok := t.(ChanT); ok {
			out[chanKey(x)] = true
		}
		return t
	}
	mapFormula(a, collect)
	return out
}

func chanKey(x ChanT) string {
	if x.Sub == nil {
		return x.Name
	}
	if lit, ok := x.Sub.(Lit); ok && lit.Val.Kind() == value.KindInt {
		return x.Name + "[" + strconv.FormatInt(lit.Val.AsInt(), 10) + "]"
	}
	return x.Name + "[*]"
}

// checkDetermined fails when the assertion subscripts channel array `name`
// with a non-literal term.
func checkDetermined(a A, name string) error {
	var bad error
	mapFormula(a, func(t Term) Term {
		if x, ok := t.(ChanT); ok && x.Name == name && x.Sub != nil {
			if lit, isLit := x.Sub.(Lit); !isLit || lit.Val.Kind() != value.KindInt {
				bad = fmt.Errorf("assertion: channel %s subscripted symbolically (%s); substitution undecidable", name, x)
			}
		}
		return t
	})
	return bad
}

// FreeVars returns the variables occurring free in the assertion
// (channel names excluded — they are "bound" by the sat judgement, §2).
func FreeVars(a A) map[string]bool {
	out := map[string]bool{}
	freeVarsFormula(a, out, map[string]bool{})
	return out
}

func freeVarsTerm(t Term, acc, bound map[string]bool) {
	switch n := t.(type) {
	case VarT:
		if !bound[n.Name] {
			acc[n.Name] = true
		}
	case ChanT:
		if n.Sub != nil {
			freeVarsTerm(n.Sub, acc, bound)
		}
	case ConstIndex:
		freeVarsTerm(n.Sub, acc, bound)
	case Cons:
		freeVarsTerm(n.Head, acc, bound)
		freeVarsTerm(n.Tail, acc, bound)
	case SeqLit:
		for _, e := range n.Elems {
			freeVarsTerm(e, acc, bound)
		}
	case Cat:
		freeVarsTerm(n.L, acc, bound)
		freeVarsTerm(n.R, acc, bound)
	case Len:
		freeVarsTerm(n.S, acc, bound)
	case At:
		freeVarsTerm(n.S, acc, bound)
		freeVarsTerm(n.Idx, acc, bound)
	case Arith:
		freeVarsTerm(n.L, acc, bound)
		freeVarsTerm(n.R, acc, bound)
	case Sum:
		freeVarsTerm(n.Lo, acc, bound)
		freeVarsTerm(n.Hi, acc, bound)
		if !bound[n.Var] {
			bound[n.Var] = true
			freeVarsTerm(n.Body, acc, bound)
			delete(bound, n.Var)
		} else {
			freeVarsTerm(n.Body, acc, bound)
		}
	case Apply:
		for _, a := range n.Args {
			freeVarsTerm(a, acc, bound)
		}
	}
}

func freeVarsFormula(a A, acc, bound map[string]bool) {
	under := func(v string, body A) {
		if bound[v] {
			freeVarsFormula(body, acc, bound)
			return
		}
		bound[v] = true
		freeVarsFormula(body, acc, bound)
		delete(bound, v)
	}
	switch n := a.(type) {
	case Cmp:
		freeVarsTerm(n.L, acc, bound)
		freeVarsTerm(n.R, acc, bound)
	case Not:
		freeVarsFormula(n.Body, acc, bound)
	case And:
		freeVarsFormula(n.L, acc, bound)
		freeVarsFormula(n.R, acc, bound)
	case Or:
		freeVarsFormula(n.L, acc, bound)
		freeVarsFormula(n.R, acc, bound)
	case Implies:
		freeVarsFormula(n.L, acc, bound)
		freeVarsFormula(n.R, acc, bound)
	case ForAllSet:
		under(n.Var, n.Body)
	case ExistsSet:
		under(n.Var, n.Body)
	case ForAllRange:
		freeVarsTerm(n.Lo, acc, bound)
		freeVarsTerm(n.Hi, acc, bound)
		under(n.Var, n.Body)
	case ExistsRange:
		freeVarsTerm(n.Lo, acc, bound)
		freeVarsTerm(n.Hi, acc, bound)
		under(n.Var, n.Body)
	case Pred:
		for _, t := range n.Args {
			freeVarsTerm(t, acc, bound)
		}
	}
}
