package assertion_test

import (
	"strings"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func ctx(t *testing.T, hist trace.History) *assertion.Ctx {
	t.Helper()
	return assertion.NewCtx(sem.NewEnv(syntax.NewModule(), 3), hist, nil)
}

func hist(pairs ...any) trace.History {
	h := make(trace.History)
	for i := 0; i < len(pairs); i += 2 {
		c := trace.Chan(pairs[i].(string))
		for _, v := range pairs[i+1].([]int64) {
			h[c] = append(h[c], value.Int(v))
		}
	}
	return h
}

func evalT(t *testing.T, term assertion.Term, c *assertion.Ctx) value.V {
	t.Helper()
	v, err := assertion.EvalTerm(term, c)
	if err != nil {
		t.Fatalf("EvalTerm(%s): %v", term, err)
	}
	return v
}

func evalA(t *testing.T, a assertion.A, c *assertion.Ctx) bool {
	t.Helper()
	b, err := assertion.Eval(a, c)
	if err != nil {
		t.Fatalf("Eval(%s): %v", a, err)
	}
	return b
}

func TestTermEvaluation(t *testing.T) {
	c := ctx(t, hist("wire", []int64{27, 0}, "input", []int64{27, 0, 3}))

	if got := evalT(t, assertion.Chan("wire"), c); got.String() != "<27,0>" {
		t.Errorf("wire = %s", got)
	}
	if got := evalT(t, assertion.Len{S: assertion.Chan("input")}, c); got.AsInt() != 3 {
		t.Errorf("#input = %v", got)
	}
	at := assertion.At{S: assertion.Chan("input"), Idx: assertion.Int(3)}
	if got := evalT(t, at, c); got.AsInt() != 3 {
		t.Errorf("input[3] = %v", got)
	}
	cons := assertion.Cons{Head: assertion.Int(9), Tail: assertion.Chan("wire")}
	if got := evalT(t, cons, c); got.String() != "<9,27,0>" {
		t.Errorf("9^wire = %s", got)
	}
	cat := assertion.Cat{L: assertion.Chan("wire"), R: assertion.Chan("wire")}
	if got := evalT(t, cat, c); got.String() != "<27,0,27,0>" {
		t.Errorf("wire++wire = %s", got)
	}
	seq := assertion.SeqLit{Elems: []assertion.Term{assertion.Int(1), assertion.Sym("ACK")}}
	if got := evalT(t, seq, c); got.String() != "<1,ACK>" {
		t.Errorf("<1,ACK> = %s", got)
	}
	sum := assertion.Sum{Var: "j", Lo: assertion.Int(1), Hi: assertion.Int(3),
		Body: assertion.Arith{Op: assertion.AMul, L: assertion.Var("j"), R: assertion.Var("j")}}
	if got := evalT(t, sum, c); got.AsInt() != 14 {
		t.Errorf("sum j^2 = %v", got)
	}
}

func TestTermErrors(t *testing.T) {
	c := ctx(t, hist())
	cases := []assertion.Term{
		assertion.Var("free"), // unbound
		assertion.At{S: assertion.Chan("w"), Idx: assertion.Int(1)},    // out of range
		assertion.At{S: assertion.Chan("w"), Idx: assertion.Int(0)},    // 1-based
		assertion.Len{S: assertion.Int(1)},                             // # of non-seq
		assertion.Cons{Head: assertion.Int(1), Tail: assertion.Int(2)}, // cons onto non-seq
		assertion.Arith{Op: assertion.ADiv, L: assertion.Int(1), R: assertion.Int(0)},
		assertion.Apply{Fn: "nope", Args: nil}, // unknown function
	}
	for _, tc := range cases {
		if _, err := assertion.EvalTerm(tc, c); err == nil {
			t.Errorf("EvalTerm(%s) accepted", tc)
		}
	}
}

func TestChanArraySubscriptEvaluation(t *testing.T) {
	h := make(trace.History)
	h[trace.Sub("row", 2)] = []value.V{value.Int(8)}
	c := ctx(t, h).Bind("j", value.Int(2))
	term := assertion.ChanIdx("row", assertion.Var("j"))
	if got := evalT(t, term, c); got.String() != "<8>" {
		t.Errorf("row[j] = %s", got)
	}
}

func TestCmpSemantics(t *testing.T) {
	c := ctx(t, hist("wire", []int64{1, 2}, "input", []int64{1, 2, 3}))
	w, in := assertion.Chan("wire"), assertion.Chan("input")
	// Sequence prefix order.
	if !evalA(t, assertion.Cmp{Op: assertion.CLe, L: w, R: in}, c) {
		t.Error("wire <= input false")
	}
	if evalA(t, assertion.Cmp{Op: assertion.CLe, L: in, R: w}, c) {
		t.Error("input <= wire true")
	}
	if !evalA(t, assertion.Cmp{Op: assertion.CLt, L: w, R: in}, c) {
		t.Error("strict prefix false")
	}
	if evalA(t, assertion.Cmp{Op: assertion.CLt, L: w, R: w}, c) {
		t.Error("s < s true")
	}
	if !evalA(t, assertion.Cmp{Op: assertion.CGe, L: in, R: w}, c) {
		t.Error("input >= wire false")
	}
	if !evalA(t, assertion.Cmp{Op: assertion.CEq, L: w, R: w}, c) {
		t.Error("seq == itself false")
	}
	// Integers.
	if !evalA(t, assertion.Cmp{Op: assertion.CLt, L: assertion.Int(1), R: assertion.Int(2)}, c) {
		t.Error("1 < 2 false")
	}
	// Mixed kinds compare only with ==/!=.
	mixed := assertion.Cmp{Op: assertion.CNe, L: assertion.Int(1), R: assertion.Sym("ACK")}
	if !evalA(t, mixed, c) {
		t.Error("1 != ACK false")
	}
	bad := assertion.Cmp{Op: assertion.CLt, L: assertion.Int(1), R: assertion.Sym("ACK")}
	if _, err := assertion.Eval(bad, c); err == nil {
		t.Error("ordering across kinds accepted")
	}
}

func TestConnectivesAndQuantifiers(t *testing.T) {
	c := ctx(t, hist("out", []int64{0, 1, 2}))
	tt, ff := assertion.BoolA{Val: true}, assertion.BoolA{Val: false}
	if !evalA(t, assertion.Implies{L: ff, R: ff}, c) ||
		!evalA(t, assertion.Implies{L: ff, R: tt}, c) ||
		evalA(t, assertion.Implies{L: tt, R: ff}, c) {
		t.Error("implication table wrong")
	}
	if !evalA(t, assertion.Not{Body: ff}, c) || evalA(t, assertion.And{L: tt, R: ff}, c) ||
		!evalA(t, assertion.Or{L: ff, R: tt}, c) {
		t.Error("connectives wrong")
	}
	// ∀i: 1..#out. out[i] == i-1.
	rangeAll := assertion.ForAllRange{
		Var: "i", Lo: assertion.Int(1), Hi: assertion.Len{S: assertion.Chan("out")},
		Body: assertion.Eq(
			assertion.At{S: assertion.Chan("out"), Idx: assertion.Var("i")},
			assertion.Arith{Op: assertion.ASub, L: assertion.Var("i"), R: assertion.Int(1)},
		),
	}
	if !evalA(t, rangeAll, c) {
		t.Error("forall range false")
	}
	// Empty range is vacuously true.
	vac := assertion.ForAllRange{Var: "i", Lo: assertion.Int(5), Hi: assertion.Int(1),
		Body: assertion.BoolA{Val: false}}
	if !evalA(t, vac, c) {
		t.Error("empty range not vacuous")
	}
	exists := assertion.ExistsRange{Var: "i", Lo: assertion.Int(1), Hi: assertion.Int(3),
		Body: assertion.Eq(assertion.At{S: assertion.Chan("out"), Idx: assertion.Var("i")}, assertion.Int(2))}
	if !evalA(t, exists, c) {
		t.Error("exists false")
	}
	// Set quantifier.
	setAll := assertion.ForAllSet{Var: "x",
		Dom:  syntax.RangeSet{Lo: syntax.IntLit{Val: 0}, Hi: syntax.IntLit{Val: 2}},
		Body: assertion.Cmp{Op: assertion.CLe, L: assertion.Var("x"), R: assertion.Int(2)}}
	if !evalA(t, setAll, c) {
		t.Error("forall set false")
	}
}

// TestProtocolF checks the paper's defining equations for f one by one.
func TestProtocolF(t *testing.T) {
	seq := func(vs ...value.V) value.V { return value.Seq(vs...) }
	x, y := value.Int(4), value.Int(9)
	ack, nack := value.Sym("ACK"), value.Sym("NACK")
	apply := func(v value.V) value.V {
		out, err := assertion.ProtocolF([]value.V{v})
		if err != nil {
			t.Fatalf("f(%s): %v", v, err)
		}
		return out
	}
	cases := []struct {
		in, want value.V
		note     string
	}{
		{seq(), seq(), "f(<>) = <>"},
		{seq(x), seq(x), "f(<x>) = <x>"},
		{seq(x, ack), seq(x), "f(x^ACK) = <x>"},
		{seq(x, nack), seq(), "f(x^NACK) = <>"},
		{seq(x, ack, y), seq(x, y), "f(x^ACK^<y>) = x^f(<y>)"},
		{seq(x, nack, y), seq(y), "f(x^NACK^<y>) = f(<y>)"},
		{seq(x, nack, x, ack), seq(x), "paper's example f(<x,NACK,x,ACK>) = <x>"},
		{seq(x, nack, x, nack, x, ack), seq(x), "double retransmission"},
		{seq(x, ack, y, nack), seq(x), "delivered then retransmitting"},
	}
	for _, tc := range cases {
		if got := apply(tc.in); !got.Equal(tc.want) {
			t.Errorf("%s: f(%s) = %s, want %s", tc.note, tc.in, got, tc.want)
		}
	}
	// f is total on ill-formed wire histories too.
	for _, in := range []value.V{seq(ack), seq(nack), seq(ack, nack), seq(x, y)} {
		apply(in)
	}
	// Arity and kind errors.
	if _, err := assertion.ProtocolF(nil); err == nil {
		t.Error("f() accepted")
	}
	if _, err := assertion.ProtocolF([]value.V{value.Int(1)}); err == nil {
		t.Error("f(non-seq) accepted")
	}
}

func TestRegistryBuiltins(t *testing.T) {
	r := assertion.NewRegistry()
	for _, name := range []string{"f", "front", "last1", "take"} {
		if _, ok := r.Func(name); !ok {
			t.Errorf("builtin %s missing", name)
		}
	}
	front, _ := r.Func("front")
	got, err := front([]value.V{value.Seq(value.Int(1), value.Int(2))})
	if err != nil || got.String() != "<1>" {
		t.Errorf("front = %v %v", got, err)
	}
	last1, _ := r.Func("last1")
	got, err = last1([]value.V{value.Seq(value.Int(1), value.Int(2))})
	if err != nil || got.String() != "<2>" {
		t.Errorf("last1 = %v %v", got, err)
	}
	take, _ := r.Func("take")
	got, err = take([]value.V{value.Int(1), value.Seq(value.Int(7), value.Int(8))})
	if err != nil || got.String() != "<7>" {
		t.Errorf("take = %v %v", got, err)
	}
	// Custom predicate round trip.
	r.RegisterPred("even", func(args []value.V) (bool, error) {
		return args[0].AsInt()%2 == 0, nil
	})
	c := assertion.NewCtx(sem.NewEnv(syntax.NewModule(), 2), trace.History{}, r)
	ok, err := assertion.Eval(assertion.Pred{Name: "even", Args: []assertion.Term{assertion.Int(4)}}, c)
	if err != nil || !ok {
		t.Errorf("predicate eval: %v %v", ok, err)
	}
}

func TestSubstitutions(t *testing.T) {
	// R = f(wire) <= x^input.
	r := assertion.PrefixLE(
		assertion.Apply{Fn: "f", Args: []assertion.Term{assertion.Chan("wire")}},
		assertion.Cons{Head: assertion.Var("x"), Tail: assertion.Chan("input")},
	)
	// R_<>.
	empty := assertion.EmptyAllChans(r)
	if got := empty.String(); strings.Contains(got, "wire") || strings.Contains(got, "input") {
		t.Errorf("EmptyAllChans left channels: %s", got)
	}
	// R[v^wire/wire].
	subst, err := assertion.SubstChanCons(r, "wire", assertion.Var("v"))
	if err != nil {
		t.Fatal(err)
	}
	if got := subst.String(); got != "f(v^wire) <= x^input" {
		t.Errorf("SubstChanCons = %q", got)
	}
	// R[3/x].
	inst := assertion.SubstVar(r, "x", assertion.Int(3))
	if got := inst.String(); got != "f(wire) <= 3^input" {
		t.Errorf("SubstVar = %q", got)
	}
	// Substitution respects binders.
	q := assertion.ForAllRange{Var: "x", Lo: assertion.Int(1), Hi: assertion.Var("x"),
		Body: assertion.Eq(assertion.Var("x"), assertion.Var("x"))}
	qi := assertion.SubstVar(q, "x", assertion.Int(9))
	want := "forall x:1..9. x == x"
	if qi.String() != want {
		t.Errorf("binder subst = %q, want %q", qi.String(), want)
	}
}

func TestSubstChanConsSymbolicSubscriptRejected(t *testing.T) {
	r := assertion.PrefixLE(assertion.ChanIdx("col", assertion.Var("j")), assertion.Chan("input"))
	if _, err := assertion.SubstChanCons(r, trace.Sub("col", 1), assertion.Int(0)); err == nil {
		t.Fatal("symbolic channel subscript substitution accepted")
	}
	// A literal subscript is fine and only hits the matching element.
	r2 := assertion.And{
		L: assertion.PrefixLE(assertion.ChanIdx("col", assertion.Int(1)), assertion.Chan("input")),
		R: assertion.PrefixLE(assertion.ChanIdx("col", assertion.Int(2)), assertion.Chan("input")),
	}
	got, err := assertion.SubstChanCons(r2, trace.Sub("col", 1), assertion.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "(0^col[1] <= input & col[2] <= input)" {
		t.Errorf("selective substitution = %q", got.String())
	}
}

func TestFreeChansAndVars(t *testing.T) {
	a := assertion.ForAllRange{
		Var: "i", Lo: assertion.Int(1), Hi: assertion.Len{S: assertion.Chan("output")},
		Body: assertion.Eq(
			assertion.At{S: assertion.Chan("output"), Idx: assertion.Var("i")},
			assertion.Arith{Op: assertion.AMul,
				L: assertion.Var("k"),
				R: assertion.At{S: assertion.ChanIdx("row", assertion.Var("j")), Idx: assertion.Var("i")}},
		),
	}
	chans := assertion.FreeChans(a)
	if !chans["output"] || !chans["row[*]"] || len(chans) != 2 {
		t.Errorf("FreeChans = %v", chans)
	}
	vars := assertion.FreeVars(a)
	if !vars["k"] || !vars["j"] || vars["i"] {
		t.Errorf("FreeVars = %v", vars)
	}
}

func TestBoundedValidity(t *testing.T) {
	env := sem.NewEnv(syntax.NewModule(), 2)
	cfg := assertion.ValidityConfig{Env: env, MaxLen: 2}

	// Valid: wire <= wire.
	valid := assertion.PrefixLE(assertion.Chan("wire"), assertion.Chan("wire"))
	cex, err := assertion.Valid(valid, cfg)
	if err != nil || cex != nil {
		t.Fatalf("wire<=wire: %v %v", cex, err)
	}
	// Valid with a variable: (wire <= input) => (v^wire <= v^input).
	mono := assertion.Implies{
		L: assertion.PrefixLE(assertion.Chan("wire"), assertion.Chan("input")),
		R: assertion.PrefixLE(
			assertion.Cons{Head: assertion.Var("v"), Tail: assertion.Chan("wire")},
			assertion.Cons{Head: assertion.Var("v"), Tail: assertion.Chan("input")},
		),
	}
	cex, err = assertion.Valid(mono, cfg)
	if err != nil || cex != nil {
		t.Fatalf("monotonicity: %v %v", cex, err)
	}
	// Invalid: wire <= input, counterexample reported.
	invalid := assertion.PrefixLE(assertion.Chan("wire"), assertion.Chan("input"))
	cex, err = assertion.Valid(invalid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("wire<=input declared valid")
	}
	if cex.String() == "" {
		t.Error("empty counterexample rendering")
	}
	// The transitivity fact behind the protocol's consequence step.
	trans := assertion.Implies{
		L: assertion.And{
			L: assertion.PrefixLE(assertion.Chan("a"), assertion.Chan("b")),
			R: assertion.PrefixLE(assertion.Chan("b"), assertion.Chan("c")),
		},
		R: assertion.PrefixLE(assertion.Chan("a"), assertion.Chan("c")),
	}
	cex, err = assertion.Valid(trans, cfg)
	if err != nil || cex != nil {
		t.Fatalf("transitivity: %v %v", cex, err)
	}
}

func TestBoundedValidityLimits(t *testing.T) {
	env := sem.NewEnv(syntax.NewModule(), 3)
	// Case-space overflow is an error, not a silent pass.
	cfg := assertion.ValidityConfig{Env: env, MaxLen: 4, MaxCases: 10}
	wide := assertion.PrefixLE(assertion.Chan("a"), assertion.Chan("b"))
	if _, err := assertion.Valid(wide, cfg); err == nil {
		t.Fatal("case-space overflow not reported")
	}
	// Symbolically subscripted channels cannot be enumerated.
	sym := assertion.PrefixLE(assertion.ChanIdx("col", assertion.Var("j")), assertion.Chan("b"))
	if _, err := assertion.Valid(sym, assertion.ValidityConfig{Env: env}); err == nil {
		t.Fatal("wildcard channel accepted")
	}
}

func TestValidityUsesVarDomains(t *testing.T) {
	env := sem.NewEnv(syntax.NewModule(), 2)
	// y ranges over {ACK} only: f(x^y^wire) = x^f(wire), so the Table-1
	// obligation holds; over {ACK,NACK} it would fail.
	ob := assertion.Implies{
		L: assertion.PrefixLE(
			assertion.Apply{Fn: "f", Args: []assertion.Term{assertion.Chan("wire")}},
			assertion.Chan("input")),
		R: assertion.PrefixLE(
			assertion.Apply{Fn: "f", Args: []assertion.Term{
				assertion.Cons{Head: assertion.Var("x"),
					Tail: assertion.Cons{Head: assertion.Var("y"), Tail: assertion.Chan("wire")}}}},
			assertion.Cons{Head: assertion.Var("x"), Tail: assertion.Chan("input")}),
	}
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	cfg := assertion.ValidityConfig{
		Env:    env,
		MaxLen: 3,
		ChanDom: map[string]value.Domain{
			"wire":  value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))},
			"input": msgs,
		},
		VarDom: map[string]value.Domain{
			"x": msgs,
			"y": value.NewEnum(value.Sym("ACK")),
		},
	}
	cex, err := assertion.Valid(ob, cfg)
	if err != nil || cex != nil {
		t.Fatalf("Table-1 ACK obligation: %v %v", cex, err)
	}
	cfg.VarDom["y"] = value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))
	cex, err = assertion.Valid(ob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("widened y should produce a counterexample")
	}
}
