package assertion

import (
	"fmt"
	"strings"

	"cspsat/internal/syntax"
)

// A is an assertion (formula) of §2: a predicate over channel histories.
// "P sat A" means A is true before and after every communication by P.
type A interface {
	assertNode()
	String() string
}

// BoolA is the constant true or false.
type BoolA struct{ Val bool }

// CmpOp enumerates comparison operators. LE and others are
// kind-polymorphic the way the paper overloads ≤: on integers they compare
// numerically; LE on two sequences is the prefix order s ≤ t of §2.
type CmpOp int

// Comparison operators.
const (
	CEq CmpOp = iota + 1
	CNe
	CLt
	CLe
	CGt
	CGe
)

func (op CmpOp) String() string {
	switch op {
	case CEq:
		return "=="
	case CNe:
		return "!="
	case CLt:
		return "<"
	case CLe:
		return "<="
	case CGt:
		return ">"
	case CGe:
		return ">="
	default:
		return "?"
	}
}

// Cmp compares two terms.
type Cmp struct {
	Op   CmpOp
	L, R Term
}

// Not is logical negation.
type Not struct{ Body A }

// And is conjunction.
type And struct{ L, R A }

// Or is disjunction.
type Or struct{ L, R A }

// Implies is implication.
type Implies struct{ L, R A }

// ForAllSet quantifies Var over a finite (or sampled) message set, e.g.
// ∀x∈M. R. The domain is a syntax-level set expression evaluated under the
// ambient environment.
type ForAllSet struct {
	Var  string
	Dom  syntax.SetExpr
	Body A
}

// ExistsSet is the dual of ForAllSet.
type ExistsSet struct {
	Var  string
	Dom  syntax.SetExpr
	Body A
}

// ForAllRange quantifies Var over the integer interval [Lo, Hi], whose
// bounds are terms (so they may mention channel histories, as in the
// multiplier invariant ∀i: 1 ≤ i ≤ #output). An empty interval makes the
// formula vacuously true.
type ForAllRange struct {
	Var    string
	Lo, Hi Term
	Body   A
}

// ExistsRange is the dual of ForAllRange.
type ExistsRange struct {
	Var    string
	Lo, Hi Term
	Body   A
}

// Pred applies a registered boolean predicate to argument terms, the escape
// hatch for properties outside the first-order fragment.
type Pred struct {
	Name string
	Args []Term
}

func (BoolA) assertNode()       {}
func (Cmp) assertNode()         {}
func (Not) assertNode()         {}
func (And) assertNode()         {}
func (Or) assertNode()          {}
func (Implies) assertNode()     {}
func (ForAllSet) assertNode()   {}
func (ExistsSet) assertNode()   {}
func (ForAllRange) assertNode() {}
func (ExistsRange) assertNode() {}
func (Pred) assertNode()        {}

func (a BoolA) String() string {
	if a.Val {
		return "true"
	}
	return "false"
}
func (a Cmp) String() string { return a.L.String() + " " + a.Op.String() + " " + a.R.String() }
func (a Not) String() string { return "!(" + a.Body.String() + ")" }
func (a And) String() string { return "(" + a.L.String() + " & " + a.R.String() + ")" }
func (a Or) String() string  { return "(" + a.L.String() + " or " + a.R.String() + ")" }
func (a Implies) String() string {
	return "(" + a.L.String() + " => " + a.R.String() + ")"
}
func (a ForAllSet) String() string {
	return "forall " + a.Var + " in " + a.Dom.String() + ". " + a.Body.String()
}
func (a ExistsSet) String() string {
	return "exists " + a.Var + " in " + a.Dom.String() + ". " + a.Body.String()
}
func (a ForAllRange) String() string {
	return fmt.Sprintf("forall %s:%s..%s. %s", a.Var, a.Lo, a.Hi, a.Body)
}
func (a ExistsRange) String() string {
	return fmt.Sprintf("exists %s:%s..%s. %s", a.Var, a.Lo, a.Hi, a.Body)
}
func (a Pred) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Name + "(" + strings.Join(parts, ",") + ")"
}

// Convenience constructors.

// True is the constant true assertion.
func True() A { return BoolA{Val: true} }

// PrefixLE returns l ≤ r on sequences (the paper's most common assertion
// shape, "wire ≤ input").
func PrefixLE(l, r Term) A { return Cmp{Op: CLe, L: l, R: r} }

// Eq returns l == r.
func Eq(l, r Term) A { return Cmp{Op: CEq, L: l, R: r} }

// AndAll folds a list of assertions into a conjunction (true when empty).
func AndAll(as ...A) A {
	if len(as) == 0 {
		return True()
	}
	out := as[0]
	for _, a := range as[1:] {
		out = And{L: out, R: a}
	}
	return out
}
