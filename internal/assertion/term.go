// Package assertion implements the paper's §2 assertion language: predicates
// whose free channel names denote the sequence of values communicated along
// that channel so far. It provides the term and formula ASTs, evaluation
// against a channel history ch(s), the substitutions the proof rules need
// (R_<>, R[e⌢c/c], R[v/x]), registered sequence functions such as the
// protocol's f, and a bounded-validity checker used to discharge pure
// logical obligations.
package assertion

import (
	"fmt"
	"strings"

	"cspsat/internal/value"
)

// Term is an expression of the assertion language. Terms evaluate to a
// value.V: integers, symbols, booleans, or sequences (channel histories are
// sequence-valued).
type Term interface {
	termNode()
	String() string
}

// Lit is a literal value, e.g. 3 or ACK or the empty sequence <>.
type Lit struct{ Val value.V }

// VarT references a logic variable (bound by ForAll/Exists/Sum) or a free
// program variable (e.g. the x of an input command, universally quantified
// in "P sat R").
type VarT struct{ Name string }

// ChanT denotes the history of a channel: the sequence of messages
// communicated on it so far. Sub, when non-nil, subscripts a channel array
// (e.g. row[j]); it must evaluate to an integer.
type ChanT struct {
	Name string
	Sub  Term
}

// Cons is the paper's x⌢s: the sequence whose first element is Head and
// whose remainder is Tail.
type Cons struct{ Head, Tail Term }

// SeqLit is an explicit sequence <a, b, c>.
type SeqLit struct{ Elems []Term }

// Cat is sequence concatenation s⌢t (both sides sequences).
type Cat struct{ L, R Term }

// Len is the paper's #s, the length of a sequence.
type Len struct{ S Term }

// At is the paper's sᵢ: the i-th message of s, 1-based as in §2.
type At struct {
	S   Term
	Idx Term
}

// ArithOp enumerates the arithmetic operators usable in assertion terms.
type ArithOp int

// Arithmetic operators.
const (
	AAdd ArithOp = iota + 1
	ASub
	AMul
	ADiv
	AMod
)

func (op ArithOp) String() string {
	switch op {
	case AAdd:
		return "+"
	case ASub:
		return "-"
	case AMul:
		return "*"
	case ADiv:
		return "/"
	case AMod:
		return "%"
	default:
		return "?"
	}
}

// Arith is integer arithmetic on terms.
type Arith struct {
	Op   ArithOp
	L, R Term
}

// Sum is Σ_{Var=Lo..Hi} Body, needed for the multiplier invariant
// output_i = Σⱼ v[j]·row[j]_i.
type Sum struct {
	Var    string
	Lo, Hi Term
	Body   Term
}

// Apply applies a registered sequence function, e.g. the protocol proof's
// f(wire) which cancels ACKs and ⟨x,NACK⟩ pairs. Functions are looked up in
// the evaluation context's registry.
type Apply struct {
	Fn   string
	Args []Term
}

// ConstIndex references a module-level constant array, e.g. the multiplier's
// fixed vector v[j].
type ConstIndex struct {
	Name string
	Sub  Term
}

// Unresolved is a parse-time placeholder for a bare identifier whose role —
// channel, logic variable, symbol, or constant array — is decided against
// the module after the whole file is parsed. Evaluating it is an error;
// the parser guarantees none survive in what it returns.
type Unresolved struct {
	Name string
	Sub  Term // non-nil for ident[expr]
}

func (Lit) termNode()        {}
func (VarT) termNode()       {}
func (ChanT) termNode()      {}
func (Cons) termNode()       {}
func (SeqLit) termNode()     {}
func (Cat) termNode()        {}
func (Len) termNode()        {}
func (At) termNode()         {}
func (Arith) termNode()      {}
func (Sum) termNode()        {}
func (Apply) termNode()      {}
func (ConstIndex) termNode() {}
func (Unresolved) termNode() {}

func (t Unresolved) String() string {
	if t.Sub == nil {
		return "?" + t.Name
	}
	return "?" + t.Name + "[" + t.Sub.String() + "]"
}

func (t Lit) String() string  { return t.Val.String() }
func (t VarT) String() string { return t.Name }
func (t ChanT) String() string {
	if t.Sub == nil {
		return t.Name
	}
	return t.Name + "[" + t.Sub.String() + "]"
}
func (t Cons) String() string { return t.Head.String() + "^" + t.Tail.String() }
func (t SeqLit) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return "<" + strings.Join(parts, ",") + ">"
}
func (t Cat) String() string { return t.L.String() + " ++ " + t.R.String() }
func (t Len) String() string {
	switch t.S.(type) {
	case ChanT, VarT, Lit, SeqLit, Apply:
		return "#" + t.S.String()
	default:
		return "#(" + t.S.String() + ")"
	}
}
func (t At) String() string { return t.S.String() + "[" + t.Idx.String() + "]" }
func (t Arith) String() string {
	return "(" + t.L.String() + " " + t.Op.String() + " " + t.R.String() + ")"
}
func (t Sum) String() string {
	return fmt.Sprintf("sum %s:%s..%s. %s", t.Var, t.Lo, t.Hi, t.Body)
}
func (t Apply) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return t.Fn + "(" + strings.Join(parts, ",") + ")"
}
func (t ConstIndex) String() string { return t.Name + "[" + t.Sub.String() + "]" }

// Convenience constructors used pervasively by tests, examples and the
// machine-encoded paper proofs.

// Chan returns the history term for a plain channel.
func Chan(name string) ChanT { return ChanT{Name: name} }

// ChanIdx returns the history term for a channel-array element.
func ChanIdx(name string, sub Term) ChanT { return ChanT{Name: name, Sub: sub} }

// Int returns an integer literal term.
func Int(i int64) Lit { return Lit{Val: value.Int(i)} }

// Sym returns a symbol literal term.
func Sym(s string) Lit { return Lit{Val: value.Sym(s)} }

// Empty returns the empty-sequence literal <>.
func Empty() Lit { return Lit{Val: value.Seq()} }

// Var returns a variable term.
func Var(name string) VarT { return VarT{Name: name} }
