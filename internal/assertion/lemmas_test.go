package assertion_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cspsat/internal/assertion"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// The paper's §3.4 lemmas (a)–(d) relate substitution into formulas with
// modification of the evaluation environment. These property tests check
// them on randomly generated histories and a representative family of
// assertions — the semantic facts on which the soundness of the output,
// input, emptiness and chan rules rests.

// qhist generates random histories over channels wire/input/output with
// small integer messages.
type qhist struct{ H trace.History }

// Generate implements quick.Generator.
func (qhist) Generate(r *rand.Rand, _ int) reflect.Value {
	h := make(trace.History)
	for _, c := range []trace.Chan{"wire", "input", "output"} {
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			h[c] = append(h[c], value.Int(int64(r.Intn(3))))
		}
	}
	return reflect.ValueOf(qhist{H: h})
}

// sampleAssertions is a family of formulas exercising every term form that
// substitution must handle.
func sampleAssertions() []assertion.A {
	w, in := assertion.Chan("wire"), assertion.Chan("input")
	return []assertion.A{
		assertion.PrefixLE(w, in),
		assertion.Cmp{Op: assertion.CLe,
			L: assertion.Len{S: in},
			R: assertion.Arith{Op: assertion.AAdd, L: assertion.Len{S: w}, R: assertion.Int(1)}},
		assertion.Implies{
			L: assertion.PrefixLE(w, in),
			R: assertion.PrefixLE(assertion.Cons{Head: assertion.Int(1), Tail: w},
				assertion.Cons{Head: assertion.Int(1), Tail: in})},
		assertion.ForAllRange{Var: "i", Lo: assertion.Int(1), Hi: assertion.Len{S: w},
			Body: assertion.Cmp{Op: assertion.CGe,
				L: assertion.At{S: w, Idx: assertion.Var("i")}, R: assertion.Int(0)}},
		assertion.PrefixLE(assertion.Apply{Fn: "f", Args: []assertion.Term{w}}, in),
	}
}

func evalUnder(t *testing.T, a assertion.A, h trace.History) bool {
	t.Helper()
	ctx := assertion.NewCtx(sem.NewEnv(syntax.NewModule(), 3), h, nil)
	got, err := assertion.Eval(a, ctx)
	if err != nil {
		t.Fatalf("eval %s under %s: %v", a, h, err)
	}
	return got
}

// Lemma (b): (ρ + ch(<>))⟦R⟧ = ρ⟦R_<>⟧ — evaluating R under empty
// histories equals evaluating the channel-erased R under anything.
func TestLemmaB_EmptySubstitution(t *testing.T) {
	for _, a := range sampleAssertions() {
		erased := assertion.EmptyAllChans(a)
		emptyVal := evalUnder(t, a, trace.History{})
		if err := quick.Check(func(q qhist) bool {
			return evalUnder(t, erased, q.H) == emptyVal
		}, nil); err != nil {
			t.Errorf("lemma (b) fails for %s: %v", a, err)
		}
	}
}

// Lemma (c): (ρ + ch(s))⟦R[e⌢c/c]⟧ = (ρ + ch((c.e)⌢s))⟦R⟧ — substituting
// e⌢c for c in the formula equals prepending the communication c.e to the
// history.
func TestLemmaC_ConsSubstitution(t *testing.T) {
	for _, a := range sampleAssertions() {
		for _, ch := range []trace.Chan{"wire", "input"} {
			for _, v := range []int64{0, 2} {
				subst, err := assertion.SubstChanCons(a, ch, assertion.Int(v))
				if err != nil {
					t.Fatalf("SubstChanCons: %v", err)
				}
				if err := quick.Check(func(q qhist) bool {
					lhs := evalUnder(t, subst, q.H)
					prepended := q.H.Clone()
					prepended[ch] = append([]value.V{value.Int(v)}, prepended[ch]...)
					rhs := evalUnder(t, a, prepended)
					return lhs == rhs
				}, nil); err != nil {
					t.Errorf("lemma (c) fails for %s, channel %s, value %d: %v", a, ch, v, err)
				}
			}
		}
	}
}

// Lemma (a): (ρ + ch(s))⟦R[v/x]⟧ = (ρ[v/x] + ch(s))⟦R⟧ — substituting a
// value literal for a variable equals binding the variable.
func TestLemmaA_VarSubstitution(t *testing.T) {
	w, in := assertion.Chan("wire"), assertion.Chan("input")
	withX := assertion.Implies{
		L: assertion.PrefixLE(w, in),
		R: assertion.PrefixLE(
			assertion.Cons{Head: assertion.Var("x"), Tail: w},
			assertion.Cons{Head: assertion.Var("x"), Tail: in}),
	}
	for _, v := range []int64{0, 1, 5} {
		subst := assertion.SubstVar(withX, "x", assertion.Int(v))
		if err := quick.Check(func(q qhist) bool {
			lhs := evalUnder(t, subst, q.H)
			ctx := assertion.NewCtx(sem.NewEnv(syntax.NewModule(), 3), q.H, nil).
				Bind("x", value.Int(v))
			rhs, err := assertion.Eval(withX, ctx)
			if err != nil {
				return false
			}
			return lhs == rhs
		}, nil); err != nil {
			t.Errorf("lemma (a) fails for x=%d: %v", v, err)
		}
	}
}

// Lemma (d): if R mentions no channel of C, then
// (ρ + ch(s))⟦R⟧ = (ρ + ch(s\C))⟦R⟧ — hiding unmentioned channels does not
// change R's truth. This underpins the chan rule.
func TestLemmaD_HidingUnmentioned(t *testing.T) {
	// R mentions only wire and input; hide output.
	hidden := trace.NewSet("output")
	for _, a := range sampleAssertions() {
		if assertion.FreeChans(a)["output"] {
			continue
		}
		if err := quick.Check(func(q qhist) bool {
			lhs := evalUnder(t, a, q.H)
			restricted := q.H.Clone()
			delete(restricted, "output")
			_ = hidden
			rhs := evalUnder(t, a, restricted)
			return lhs == rhs
		}, nil); err != nil {
			t.Errorf("lemma (d) fails for %s: %v", a, err)
		}
	}
}
