package assertion

import (
	"fmt"

	"cspsat/internal/sem"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// Ctx is the evaluation context of §3.3: the environment ρ extended with
// the channel histories ch(s). Logic variables are bound through Bind; the
// registry resolves sequence functions and predicates.
type Ctx struct {
	Env   sem.Env
	Hist  trace.History
	Funcs *Registry
}

// NewCtx builds an evaluation context. funcs may be nil when the assertion
// uses no registered functions.
func NewCtx(env sem.Env, hist trace.History, funcs *Registry) *Ctx {
	if funcs == nil {
		funcs = NewRegistry()
	}
	return &Ctx{Env: env, Hist: hist, Funcs: funcs}
}

// Bind returns a context with x ↦ v added (the paper's ρ[v/x]).
func (c *Ctx) Bind(x string, v value.V) *Ctx {
	return &Ctx{Env: c.Env.Bind(x, v), Hist: c.Hist, Funcs: c.Funcs}
}

// WithHist returns a context evaluating against a different history.
func (c *Ctx) WithHist(h trace.History) *Ctx {
	return &Ctx{Env: c.Env, Hist: h, Funcs: c.Funcs}
}

// EvalTerm evaluates a term to a value under the context.
func EvalTerm(t Term, ctx *Ctx) (value.V, error) {
	switch x := t.(type) {
	case Lit:
		return x.Val, nil
	case VarT:
		v, ok := ctx.Env.LookupVar(x.Name)
		if !ok {
			return value.V{}, fmt.Errorf("assertion: unbound variable %q", x.Name)
		}
		return v, nil
	case ChanT:
		ch, err := evalChanName(x, ctx)
		if err != nil {
			return value.V{}, err
		}
		return value.SeqOf(ctx.Hist.Get(ch)), nil
	case Cons:
		h, err := EvalTerm(x.Head, ctx)
		if err != nil {
			return value.V{}, err
		}
		tl, err := EvalTerm(x.Tail, ctx)
		if err != nil {
			return value.V{}, err
		}
		if tl.Kind() != value.KindSeq {
			return value.V{}, fmt.Errorf("assertion: cons onto non-sequence %v", tl)
		}
		rest := tl.AsSeq()
		out := make([]value.V, 0, len(rest)+1)
		out = append(out, h)
		out = append(out, rest...)
		return value.SeqOf(out), nil
	case SeqLit:
		out := make([]value.V, len(x.Elems))
		for i, e := range x.Elems {
			v, err := EvalTerm(e, ctx)
			if err != nil {
				return value.V{}, err
			}
			out[i] = v
		}
		return value.SeqOf(out), nil
	case Cat:
		l, err := EvalTerm(x.L, ctx)
		if err != nil {
			return value.V{}, err
		}
		r, err := EvalTerm(x.R, ctx)
		if err != nil {
			return value.V{}, err
		}
		if l.Kind() != value.KindSeq || r.Kind() != value.KindSeq {
			return value.V{}, fmt.Errorf("assertion: concatenation of non-sequences %v ++ %v", l, r)
		}
		ls, rs := l.AsSeq(), r.AsSeq()
		out := make([]value.V, 0, len(ls)+len(rs))
		out = append(out, ls...)
		out = append(out, rs...)
		return value.SeqOf(out), nil
	case Len:
		s, err := EvalTerm(x.S, ctx)
		if err != nil {
			return value.V{}, err
		}
		if s.Kind() != value.KindSeq {
			return value.V{}, fmt.Errorf("assertion: # of non-sequence %v", s)
		}
		return value.Int(int64(len(s.AsSeq()))), nil
	case At:
		s, err := EvalTerm(x.S, ctx)
		if err != nil {
			return value.V{}, err
		}
		i, err := EvalTerm(x.Idx, ctx)
		if err != nil {
			return value.V{}, err
		}
		if s.Kind() != value.KindSeq || i.Kind() != value.KindInt {
			return value.V{}, fmt.Errorf("assertion: bad indexing %v[%v]", s, i)
		}
		seq := s.AsSeq()
		idx := i.AsInt()
		if idx < 1 || idx > int64(len(seq)) {
			return value.V{}, fmt.Errorf("assertion: index %d out of range 1..%d", idx, len(seq))
		}
		return seq[idx-1], nil
	case Arith:
		l, err := EvalTerm(x.L, ctx)
		if err != nil {
			return value.V{}, err
		}
		r, err := EvalTerm(x.R, ctx)
		if err != nil {
			return value.V{}, err
		}
		if l.Kind() != value.KindInt || r.Kind() != value.KindInt {
			return value.V{}, fmt.Errorf("assertion: arithmetic on %v %s %v", l, x.Op, r)
		}
		return evalArith(x.Op, l.AsInt(), r.AsInt())
	case Sum:
		lo, hi, err := evalBounds(x.Lo, x.Hi, ctx)
		if err != nil {
			return value.V{}, err
		}
		var acc int64
		for i := lo; i <= hi; i++ {
			v, err := EvalTerm(x.Body, ctx.Bind(x.Var, value.Int(i)))
			if err != nil {
				return value.V{}, err
			}
			if v.Kind() != value.KindInt {
				return value.V{}, fmt.Errorf("assertion: sum body evaluated to non-integer %v", v)
			}
			acc += v.AsInt()
		}
		return value.Int(acc), nil
	case Apply:
		fn, ok := ctx.Funcs.Func(x.Fn)
		if !ok {
			return value.V{}, fmt.Errorf("assertion: unknown function %q", x.Fn)
		}
		args := make([]value.V, len(x.Args))
		for i, a := range x.Args {
			v, err := EvalTerm(a, ctx)
			if err != nil {
				return value.V{}, err
			}
			args[i] = v
		}
		return fn(args)
	case ConstIndex:
		i, err := EvalTerm(x.Sub, ctx)
		if err != nil {
			return value.V{}, err
		}
		arr, ok := ctx.Env.Module().Arrays[x.Name]
		if !ok {
			return value.V{}, fmt.Errorf("assertion: unknown constant array %q", x.Name)
		}
		if i.Kind() != value.KindInt {
			return value.V{}, fmt.Errorf("assertion: non-integer subscript %v for %s", i, x.Name)
		}
		off := i.AsInt() - arr.Lo
		if off < 0 || off >= int64(len(arr.Elems)) {
			return value.V{}, fmt.Errorf("assertion: subscript %d out of range for %s", i.AsInt(), x.Name)
		}
		return value.Int(arr.Elems[off]), nil
	default:
		return value.V{}, fmt.Errorf("assertion: cannot evaluate term %T", t)
	}
}

func evalChanName(x ChanT, ctx *Ctx) (trace.Chan, error) {
	if x.Sub == nil {
		return trace.Chan(x.Name), nil
	}
	i, err := EvalTerm(x.Sub, ctx)
	if err != nil {
		return "", err
	}
	if i.Kind() != value.KindInt {
		return "", fmt.Errorf("assertion: non-integer channel subscript %v for %s", i, x.Name)
	}
	return trace.Sub(x.Name, i.AsInt()), nil
}

func evalArith(op ArithOp, l, r int64) (value.V, error) {
	switch op {
	case AAdd:
		return value.Int(l + r), nil
	case ASub:
		return value.Int(l - r), nil
	case AMul:
		return value.Int(l * r), nil
	case ADiv:
		if r == 0 {
			return value.V{}, fmt.Errorf("assertion: division by zero")
		}
		return value.Int(l / r), nil
	case AMod:
		if r == 0 {
			return value.V{}, fmt.Errorf("assertion: modulo by zero")
		}
		return value.Int(l % r), nil
	default:
		return value.V{}, fmt.Errorf("assertion: unknown operator %v", op)
	}
}

func evalBounds(lo, hi Term, ctx *Ctx) (int64, int64, error) {
	l, err := EvalTerm(lo, ctx)
	if err != nil {
		return 0, 0, err
	}
	h, err := EvalTerm(hi, ctx)
	if err != nil {
		return 0, 0, err
	}
	if l.Kind() != value.KindInt || h.Kind() != value.KindInt {
		return 0, 0, fmt.Errorf("assertion: non-integer bounds %v..%v", l, h)
	}
	return l.AsInt(), h.AsInt(), nil
}

// Eval evaluates the assertion under the context: the paper's
// (ρ + ch(s))⟦R⟧.
func Eval(a A, ctx *Ctx) (bool, error) {
	switch x := a.(type) {
	case BoolA:
		return x.Val, nil
	case Cmp:
		l, err := EvalTerm(x.L, ctx)
		if err != nil {
			return false, err
		}
		r, err := EvalTerm(x.R, ctx)
		if err != nil {
			return false, err
		}
		return evalCmp(x.Op, l, r)
	case Not:
		b, err := Eval(x.Body, ctx)
		return !b, err
	case And:
		l, err := Eval(x.L, ctx)
		if err != nil {
			return false, err
		}
		if !l {
			return false, nil
		}
		return Eval(x.R, ctx)
	case Or:
		l, err := Eval(x.L, ctx)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return Eval(x.R, ctx)
	case Implies:
		l, err := Eval(x.L, ctx)
		if err != nil {
			return false, err
		}
		if !l {
			return true, nil
		}
		return Eval(x.R, ctx)
	case ForAllSet:
		dom, err := ctx.Env.EvalSet(x.Dom)
		if err != nil {
			return false, err
		}
		for _, v := range dom.Enumerate() {
			b, err := Eval(x.Body, ctx.Bind(x.Var, v))
			if err != nil {
				return false, err
			}
			if !b {
				return false, nil
			}
		}
		return true, nil
	case ExistsSet:
		dom, err := ctx.Env.EvalSet(x.Dom)
		if err != nil {
			return false, err
		}
		for _, v := range dom.Enumerate() {
			b, err := Eval(x.Body, ctx.Bind(x.Var, v))
			if err != nil {
				return false, err
			}
			if b {
				return true, nil
			}
		}
		return false, nil
	case ForAllRange:
		lo, hi, err := evalBounds(x.Lo, x.Hi, ctx)
		if err != nil {
			return false, err
		}
		for i := lo; i <= hi; i++ {
			b, err := Eval(x.Body, ctx.Bind(x.Var, value.Int(i)))
			if err != nil {
				return false, err
			}
			if !b {
				return false, nil
			}
		}
		return true, nil
	case ExistsRange:
		lo, hi, err := evalBounds(x.Lo, x.Hi, ctx)
		if err != nil {
			return false, err
		}
		for i := lo; i <= hi; i++ {
			b, err := Eval(x.Body, ctx.Bind(x.Var, value.Int(i)))
			if err != nil {
				return false, err
			}
			if b {
				return true, nil
			}
		}
		return false, nil
	case Pred:
		p, ok := ctx.Funcs.Pred(x.Name)
		if !ok {
			return false, fmt.Errorf("assertion: unknown predicate %q", x.Name)
		}
		args := make([]value.V, len(x.Args))
		for i, t := range x.Args {
			v, err := EvalTerm(t, ctx)
			if err != nil {
				return false, err
			}
			args[i] = v
		}
		return p(args)
	case DeadlockFree, Offers:
		// Behavioural forms are about refusals, not histories; they are
		// discharged by the failures-model checker, never by Eval.
		return false, fmt.Errorf("assertion: %s is a behavioural (refusal-level) form; it needs the failures model, not a history evaluation", a)
	default:
		return false, fmt.Errorf("assertion: cannot evaluate formula %T", a)
	}
}

func evalCmp(op CmpOp, l, r value.V) (bool, error) {
	// Sequences: == and != compare whole sequences; <= and < are the
	// paper's prefix order (strict prefix for <); > and >= are the
	// reversed prefix order.
	if l.Kind() == value.KindSeq && r.Kind() == value.KindSeq {
		ls, rs := l.AsSeq(), r.AsSeq()
		switch op {
		case CEq:
			return l.Equal(r), nil
		case CNe:
			return !l.Equal(r), nil
		case CLe:
			return trace.IsPrefixSeq(ls, rs), nil
		case CLt:
			return len(ls) < len(rs) && trace.IsPrefixSeq(ls, rs), nil
		case CGe:
			return trace.IsPrefixSeq(rs, ls), nil
		case CGt:
			return len(rs) < len(ls) && trace.IsPrefixSeq(rs, ls), nil
		}
	}
	if l.Kind() == value.KindInt && r.Kind() == value.KindInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case CEq:
			return a == b, nil
		case CNe:
			return a != b, nil
		case CLt:
			return a < b, nil
		case CLe:
			return a <= b, nil
		case CGt:
			return a > b, nil
		case CGe:
			return a >= b, nil
		}
	}
	switch op {
	case CEq:
		return l.Equal(r), nil
	case CNe:
		return !l.Equal(r), nil
	}
	return false, fmt.Errorf("assertion: cannot compare %v %s %v", l, op, r)
}
