package assertion

import (
	"fmt"

	"cspsat/internal/value"
)

// Func is a registered total function over values, used by Apply terms.
type Func func(args []value.V) (value.V, error)

// PredFunc is a registered boolean predicate, used by Pred formulas.
type PredFunc func(args []value.V) (bool, error)

// Registry resolves function and predicate names appearing in assertions.
// A registry pre-populated with the paper's functions is returned by
// NewRegistry; modules may register additional ones.
type Registry struct {
	funcs map[string]Func
	preds map[string]PredFunc
}

// NewRegistry returns a registry containing the built-in functions:
//
//	f(s)       the §2.2 protocol function: cancels every ACK and every
//	           consecutive ⟨x, NACK⟩ pair, leaving the successfully
//	           delivered messages
//	front(s)   s without its last element (<> for <>)
//	last1(s)   the one-element sequence holding s's last element (<> for <>)
//	take(n,s)  the first n elements of s
func NewRegistry() *Registry {
	r := &Registry{funcs: map[string]Func{}, preds: map[string]PredFunc{}}
	r.RegisterFunc("f", ProtocolF)
	r.RegisterFunc("front", seqFront)
	r.RegisterFunc("last1", seqLast1)
	r.RegisterFunc("take", seqTake)
	return r
}

// RegisterFunc adds (or replaces) a function binding.
func (r *Registry) RegisterFunc(name string, fn Func) { r.funcs[name] = fn }

// RegisterPred adds (or replaces) a predicate binding.
func (r *Registry) RegisterPred(name string, p PredFunc) { r.preds[name] = p }

// Func looks up a function by name.
func (r *Registry) Func(name string) (Func, bool) {
	fn, ok := r.funcs[name]
	return fn, ok
}

// Pred looks up a predicate by name.
func (r *Registry) Pred(name string) (PredFunc, bool) {
	p, ok := r.preds[name]
	return p, ok
}

// ProtocolF is the paper's §2.2 function f: (M ∪ {ACK,NACK})* → M*. The
// value of f(s) is obtained from s by cancelling all occurrences of ACK and
// all consecutive ⟨x, NACK⟩ pairs, e.g. f(<x, NACK, x, ACK>) = <x>.
// Operationally, it recovers from the wire history the messages the
// receiver has accepted (plus a possibly in-flight final message).
//
// The defining equations from the paper, which the implementation follows
// literally (and tests check one by one):
//
//	f(<>)            = <>
//	f(<x>)           = <x>           for x ∈ M
//	f(x⌢ACK⌢rest)    = x⌢f(rest)
//	f(x⌢NACK⌢rest)   = f(rest)
func ProtocolF(args []value.V) (value.V, error) {
	if len(args) != 1 {
		return value.V{}, fmt.Errorf("f: want 1 argument, got %d", len(args))
	}
	s := args[0]
	if s.Kind() != value.KindSeq {
		return value.V{}, fmt.Errorf("f: want a sequence, got %v", s)
	}
	in := s.AsSeq()
	var out []value.V
	for i := 0; i < len(in); i++ {
		cur := in[i]
		if isSig(cur) {
			// A bare ACK/NACK not paired with a preceding message: the
			// paper cancels ACKs outright; an unpaired NACK likewise
			// disappears (it acknowledges nothing).
			continue
		}
		if i+1 < len(in) {
			next := in[i+1]
			if isAck(next) {
				out = append(out, cur)
				i++
				continue
			}
			if isNack(next) {
				i++ // cancel the ⟨x, NACK⟩ pair
				continue
			}
			// Next is another message: the paper's grammar never produces
			// two consecutive data messages on the wire, but f must be
			// total; we keep cur (it is the latest in-flight message).
			out = append(out, cur)
			continue
		}
		// Final, unacknowledged in-flight message: f(<x>) = <x>.
		out = append(out, cur)
	}
	return value.SeqOf(out), nil
}

func isAck(v value.V) bool  { return v.Kind() == value.KindSym && v.AsSym() == "ACK" }
func isNack(v value.V) bool { return v.Kind() == value.KindSym && v.AsSym() == "NACK" }
func isSig(v value.V) bool  { return isAck(v) || isNack(v) }

func seqFront(args []value.V) (value.V, error) {
	if len(args) != 1 || args[0].Kind() != value.KindSeq {
		return value.V{}, fmt.Errorf("front: want one sequence argument")
	}
	s := args[0].AsSeq()
	if len(s) == 0 {
		return value.Seq(), nil
	}
	return value.SeqOf(s[:len(s)-1]), nil
}

func seqLast1(args []value.V) (value.V, error) {
	if len(args) != 1 || args[0].Kind() != value.KindSeq {
		return value.V{}, fmt.Errorf("last1: want one sequence argument")
	}
	s := args[0].AsSeq()
	if len(s) == 0 {
		return value.Seq(), nil
	}
	return value.Seq(s[len(s)-1]), nil
}

func seqTake(args []value.V) (value.V, error) {
	if len(args) != 2 || args[0].Kind() != value.KindInt || args[1].Kind() != value.KindSeq {
		return value.V{}, fmt.Errorf("take: want (n, sequence)")
	}
	n := args[0].AsInt()
	s := args[1].AsSeq()
	if n < 0 {
		n = 0
	}
	if n > int64(len(s)) {
		n = int64(len(s))
	}
	return value.SeqOf(s[:n]), nil
}
