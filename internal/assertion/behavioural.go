package assertion

// Behavioural assertion forms: predicates over a process's *refusals*
// rather than its channel histories. The paper's assertion language (§2)
// speaks only about traces, so "P sat R" can never distinguish STOP | P
// from P (§4); these forms close that gap. They are not evaluable over a
// single history — Eval rejects them — and are instead discharged by the
// model checker against the stable-failures model (internal/failures) when
// a check runs under the failures model. Under the trace model they hold
// vacuously, which is exactly the paper's observation that STOP satisfies
// every satisfiable trace assertion.

// DeadlockFree asserts the process never reaches a stable state that
// refuses everything (an empty acceptance).
type DeadlockFree struct{}

// Offers asserts the process can never refuse all of the named channels:
// after every trace, every stable state offers at least one event on some
// channel in Chans. It generalises DeadlockFree (which demands *some*
// offer) to a named environment interface.
type Offers struct {
	Chans []string
}

func (DeadlockFree) assertNode() {}
func (Offers) assertNode()       {}

func (DeadlockFree) String() string { return "deadlockfree" }

func (a Offers) String() string {
	out := "offers "
	for i, c := range a.Chans {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

// Behavioural reports whether the assertion is a refusal-level form that
// only a model richer than traces can discharge. Behavioural forms are
// top-level only (the parser enforces it), so the check needs no
// recursion.
func Behavioural(a A) bool {
	switch a.(type) {
	case DeadlockFree, Offers:
		return true
	}
	return false
}
