package assertion_test

import (
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

// FuzzEval drives the assertion evaluator with structurally generated
// formulas over structurally generated channel histories, both decoded
// from the fuzzer's byte stream. The evaluator sits on the proof-checking
// path (internal/proofs, runtime monitors), so its contract is strict:
//
//   - Eval never panics, whatever the formula shape — it reports
//     ill-formed terms (unbound variables, non-integer indices, …) as
//     errors, never by crashing;
//   - Eval is deterministic: the same formula over the same history
//     yields the same (value, error) outcome;
//   - negation is involutive and classical on the error-free fragment:
//     Eval(¬A) = ¬Eval(A), and De Morgan relates ∧/∨.
//
// The decoder is total (every byte string decodes to some formula), so
// the fuzzer explores the AST space freely rather than fighting a parser.
func FuzzEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte("len(tr) >= 0 over some history bytes"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0x10, 0x20})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("oversized input")
		}
		d := &decoder{data: data}
		hist := d.history()
		a := d.assertion(3)

		env := sem.NewEnv(syntax.NewModule(), 2)
		ctx := assertion.NewCtx(env, hist, assertion.NewRegistry())

		v1, err1 := assertion.Eval(a, ctx) // must not panic
		v2, err2 := assertion.Eval(a, ctx)
		if v1 != v2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("Eval not deterministic on %s: (%v,%v) then (%v,%v)", a, v1, err1, v2, err2)
		}

		nv, nerr := assertion.Eval(assertion.Not{Body: a}, ctx)
		if err1 == nil {
			if nerr != nil {
				t.Fatalf("A evaluates but ¬A errors (%v) on %s", nerr, a)
			}
			if nv != !v1 {
				t.Fatalf("Eval(¬A) = %v but Eval(A) = %v on %s", nv, v1, a)
			}
		}

		// De Morgan on the error-free fragment: both operands must
		// individually evaluate, since ∧/∨ short-circuit past errors.
		b := d.assertion(2)
		_, errB := assertion.Eval(b, ctx)
		if err1 == nil && errB == nil {
			lhs, errL := assertion.Eval(assertion.Not{Body: assertion.And{L: a, R: b}}, ctx)
			rhs, errR := assertion.Eval(assertion.Or{L: assertion.Not{Body: a}, R: assertion.Not{Body: b}}, ctx)
			if errL != nil || errR != nil {
				t.Fatalf("De Morgan sides errored (%v, %v) on error-free operands %s, %s", errL, errR, a, b)
			}
			if lhs != rhs {
				t.Fatalf("De Morgan violated: ¬(A∧B)=%v, ¬A∨¬B=%v on %s, %s", lhs, rhs, a, b)
			}
		}
	})
}

// decoder turns the fuzzer's byte stream into histories and formulas.
// Exhausted input yields zeros, so decoding always terminates with leaves.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) byte() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

var fuzzChans = []string{"a", "b", "c"}

// history decodes a visible trace over the fuzz channels and converts it
// to per-channel histories exactly as the runtime does.
func (d *decoder) history() trace.History {
	var tr trace.T
	n := int(d.byte() % 8)
	for i := 0; i < n; i++ {
		c := fuzzChans[int(d.byte())%len(fuzzChans)]
		v := int64(d.byte() % 4)
		tr = tr.Append(trace.Event{Chan: trace.Chan(c), Msg: value.Int(v)})
	}
	return trace.Ch(tr)
}

// term decodes an assertion term. Unbound variables and shape errors are
// deliberately reachable — the evaluator must reject them gracefully.
func (d *decoder) term(depth int) assertion.Term {
	if depth <= 0 {
		switch d.byte() % 3 {
		case 0:
			return assertion.Lit{Val: value.Int(int64(d.byte() % 5))}
		case 1:
			return assertion.Chan(fuzzChans[int(d.byte())%len(fuzzChans)])
		default:
			return assertion.Var([]string{"i", "j", "zombie"}[int(d.byte())%3])
		}
	}
	switch d.byte() % 10 {
	case 0:
		return assertion.Lit{Val: value.Int(int64(d.byte()%9) - 4)}
	case 1:
		return assertion.Chan(fuzzChans[int(d.byte())%len(fuzzChans)])
	case 2:
		return assertion.Var([]string{"i", "j", "zombie"}[int(d.byte())%3])
	case 3:
		return assertion.Len{S: d.term(depth - 1)}
	case 4:
		return assertion.At{S: d.term(depth - 1), Idx: d.term(depth - 1)}
	case 5:
		return assertion.Cat{L: d.term(depth - 1), R: d.term(depth - 1)}
	case 6:
		return assertion.Cons{Head: d.term(depth - 1), Tail: d.term(depth - 1)}
	case 7:
		elems := make([]assertion.Term, d.byte()%3)
		for i := range elems {
			elems[i] = d.term(depth - 1)
		}
		return assertion.SeqLit{Elems: elems}
	case 8:
		op := assertion.ArithOp(int(d.byte())%5) + assertion.AAdd
		return assertion.Arith{Op: op, L: d.term(depth - 1), R: d.term(depth - 1)}
	default:
		return assertion.Sum{
			Var:  "j",
			Lo:   assertion.Lit{Val: value.Int(int64(d.byte() % 3))},
			Hi:   assertion.Lit{Val: value.Int(int64(d.byte() % 4))},
			Body: d.term(depth - 1),
		}
	}
}

// assertion decodes a formula of bounded depth.
func (d *decoder) assertion(depth int) assertion.A {
	if depth <= 0 {
		if d.byte()%2 == 0 {
			return assertion.BoolA{Val: d.byte()%2 == 0}
		}
		return d.cmp(1)
	}
	switch d.byte() % 8 {
	case 0:
		return assertion.BoolA{Val: d.byte()%2 == 0}
	case 1:
		return d.cmp(depth)
	case 2:
		return assertion.Not{Body: d.assertion(depth - 1)}
	case 3:
		return assertion.And{L: d.assertion(depth - 1), R: d.assertion(depth - 1)}
	case 4:
		return assertion.Or{L: d.assertion(depth - 1), R: d.assertion(depth - 1)}
	case 5:
		return assertion.Implies{L: d.assertion(depth - 1), R: d.assertion(depth - 1)}
	case 6:
		return assertion.ForAllRange{
			Var:  "i",
			Lo:   assertion.Lit{Val: value.Int(int64(d.byte() % 3))},
			Hi:   d.term(1),
			Body: d.assertion(depth - 1),
		}
	default:
		return assertion.ExistsRange{
			Var:  "i",
			Lo:   assertion.Lit{Val: value.Int(int64(d.byte() % 3))},
			Hi:   d.term(1),
			Body: d.assertion(depth - 1),
		}
	}
}

func (d *decoder) cmp(depth int) assertion.A {
	op := assertion.CmpOp(int(d.byte())%6) + assertion.CEq
	return assertion.Cmp{Op: op, L: d.term(depth), R: d.term(depth)}
}
