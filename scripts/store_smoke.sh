#!/usr/bin/env bash
# End-to-end smoke test of the artifact store: boots cspserved with -store,
# drives /v1 endpoints, restarts it over the same directory, and checks the
# warm instance (a) reports store hits in /metrics, (b) answers with
# byte-identical payloads, and (c) survives a flipped-byte artifact by
# quarantining and recomputing. CI runs this; it also works locally (needs
# curl + jq).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8932
BASE="http://$ADDR"
LOG="$(mktemp)"
STORE="$(mktemp -d)"
OUT="$(mktemp -d)"
BIN="$OUT/cspserved"
PID=

go build -o "$BIN" ./cmd/cspserved

start() {
  "$BIN" -addr "$ADDR" -timeout 60s -store "$STORE" >"$LOG" 2>&1 &
  PID=$!
  for i in $(seq 1 50); do
    curl -fsS "$BASE/readyz" >/dev/null 2>&1 && return
    [ "$i" = 50 ] && { echo "cspserved never became ready"; cat "$LOG"; exit 1; }
    sleep 0.1
  done
}

stop() {
  kill -TERM "$PID"
  wait "$PID"
}
trap 'kill -9 $PID 2>/dev/null || true' EXIT

# drive TAG: run the workload and write each response's payload field
# (normalised with jq -S; elapsed_ms and cache_hit legitimately vary) to
# $OUT/$TAG.*, so runs are diffable byte-for-byte.
drive() {
  local tag=$1
  jq -n --rawfile src specs/copier.csp '{source: $src, process: "copier", depth: 6}' \
    | curl -fsS "$BASE/v1/traces" -d @- | jq -S '.traces' >"$OUT/$tag.traces"
  jq -n --rawfile src specs/copier.csp '{source: $src, depth: 6}' \
    | curl -fsS "$BASE/v1/check" -d @- | jq -S '.asserts' >"$OUT/$tag.asserts"
  jq -n --rawfile src specs/copier.csp '{source: $src}' \
    | curl -fsS "$BASE/v1/prove" -d @- | jq -S '.proofs' >"$OUT/$tag.proofs"
  # The refinement artifact kind: a deliberately failing failures-model
  # verdict must round-trip the store like the passing kinds do.
  jq -n --rawfile src specs/nondet.csp \
      '{source: $src, impl: "flaky", spec: "vend", model: "failures", depth: 5}' \
    | curl -fsS "$BASE/v1/refine" -d @- | jq -S '.refine' >"$OUT/$tag.refine"
}

echo "== cold boot"
start
curl -fsS "$BASE/readyz" | jq -e '.status == "ready"' >/dev/null
drive cold
stop
ls "$STORE"/*.cspa >/dev/null || { echo "no artifacts persisted"; exit 1; }

echo "== warm restart serves byte-identical payloads off the mmap'd arenas"
start
drive warm
for field in traces asserts proofs refine; do
  diff "$OUT/cold.$field" "$OUT/warm.$field" \
    || { echo "warm $field payload differs from cold"; exit 1; }
done
# The warm responses must have come through the frozen tier: every store
# hit loaded via the zero-copy mapped path (store_mapped), arenas opened
# and resident (arena_bytes), and the trace listings answered from frozen
# views without a thaw (hits).
curl -fsS "$BASE/metrics" | jq -e '
  .ready == true and
  .module_cache.store_hits >= 1 and
  .module_cache.store_mapped >= 1 and
  .module_cache.store_bytes_read >= 1 and
  .frozen.arenas_opened >= 1 and
  .frozen.arena_bytes >= 1 and
  .frozen.hits >= 1' >/dev/null
stop

echo "== flipped-byte artifact is quarantined and recomputed"
for f in "$STORE"/*.cspa; do
  printf '\377' | dd of="$f" bs=1 seek=100 conv=notrunc 2>/dev/null
done
start
grep -q "quarantined" "$LOG"
drive corrupt
for field in traces asserts proofs refine; do
  diff "$OUT/cold.$field" "$OUT/corrupt.$field" \
    || { echo "recomputed $field payload differs from cold"; exit 1; }
done
curl -fsS "$BASE/metrics" | jq -e '.module_cache.store_corrupt >= 1' >/dev/null
ls "$STORE"/*.corrupt >/dev/null || { echo "corrupt artifact not quarantined"; exit 1; }
stop

echo "== cspstore operates the directory"
go build -o "$OUT/cspstore" ./cmd/cspstore
"$OUT/cspstore" -store "$STORE" ls | grep -q "arena" || { echo "ls shows no arena sizes"; exit 1; }
"$OUT/cspstore" -store "$STORE" verify
"$OUT/cspstore" -store "$STORE" -thaw verify
"$OUT/cspstore" -store "$STORE" gc | grep -q "removed"
if ls "$STORE"/*.corrupt >/dev/null 2>&1; then
  echo "gc left quarantined files behind"; exit 1
fi

echo "store smoke: all good"
