#!/bin/sh
# bench_json.sh — run the experiment benchmarks (E01–E21) with -benchmem
# and write the results as BENCH_<date>.json in the repo root, one object
# per benchmark with ns/op, B/op, allocs/op, and any custom metrics the
# benchmark reported (memo-hit-rate, interned-nodes, ...). The header
# records the git commit, the Go toolchain version, and GOMAXPROCS so
# snapshots from different commits, toolchains, or core counts are never
# compared blindly.
#
# Usage: scripts/bench_json.sh [--allow-dirty] [extra go test args...]
#   --allow-dirty     permit running with uncommitted changes; the commit
#                     is stamped "<sha>-dirty". Without it a dirty tree is
#                     a hard error: a snapshot stamped with a commit whose
#                     tree was never the one measured is worse than no
#                     snapshot (BENCH_2026-08-08.json got that way once).
#   BENCH_OUT=path    override the output file
#   BENCH_PATTERN=re  override the benchmark regex (default: every
#                     numbered experiment benchmark, E01 through the
#                     E16/E17 width-N scaling matrix)
#   BENCH_TIME=d      override -benchtime (default 1s)
#   BENCH_GOGC=n      override GOGC for the run (default 400: snapshots
#                     measure engine compute, not collector bookkeeping —
#                     on a host with fewer cores than GOMAXPROCS the
#                     collector's per-P overhead would otherwise dominate
#                     the high-proc scaling rows; the value is recorded in
#                     the JSON header)
#
# The JSON is a snapshot for EXPERIMENTS.md and the CI artifact, not a
# benchstat replacement: re-run on the same machine before comparing.
set -eu

cd "$(dirname "$0")/.."

allow_dirty=0
if [ "${1:-}" = "--allow-dirty" ]; then
	allow_dirty=1
	shift
fi

pattern="${BENCH_PATTERN:-^BenchmarkE[0-9]+}"
benchtime="${BENCH_TIME:-1s}"
gogc="${BENCH_GOGC:-400}"
out="${BENCH_OUT:-BENCH_$(date +%Y-%m-%d).json}"
commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD 2>/dev/null; then
	if [ "$allow_dirty" -ne 1 ]; then
		echo "bench_json.sh: working tree is dirty; commit first or pass --allow-dirty" >&2
		exit 1
	fi
	commit="$commit-dirty"
fi
maxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc)}"
gover="$(go env GOVERSION 2>/dev/null || echo unknown)"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# A full 1s-benchtime sweep (plus the untimed per-iteration GC the
# scaling benchmarks do) can outlast go test's default 10m timeout, and
# POSIX sh has no pipefail — run to a file and fail hard before writing
# any JSON, so a broken run can never produce a header-only snapshot.
if ! GOGC="$gogc" go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
	-timeout 45m "$@" . > "$tmp" 2>&1; then
	cat "$tmp"
	echo "bench_json.sh: go test failed; no JSON written" >&2
	exit 1
fi
cat "$tmp"

awk -v date="$(date +%Y-%m-%dT%H:%M:%S%z)" -v commit="$commit" -v maxprocs="$maxprocs" -v gogc="$gogc" -v gover="$gover" '
BEGIN { n = 0 }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    iters = $2
    extra = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_.-]/, "_", unit)
        extra = extra sprintf(",\"%s\":%s", unit, $i)
    }
    rows[n++] = sprintf("  {\"name\":\"%s\",\"iterations\":%s%s}", name, iters, extra)
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"gomaxprocs\": %s,\n", maxprocs
    printf "  \"gogc\": %s,\n", gogc
    printf "  \"goos\": \"%s\", \"goarch\": \"%s\",\n", goos, goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out" >&2
