#!/bin/sh
# bench_json.sh — run the experiment benchmarks (E01–E19) with -benchmem
# and write the results as BENCH_<date>.json in the repo root, one object
# per benchmark with ns/op, B/op, allocs/op, and any custom metrics the
# benchmark reported (memo-hit-rate, interned-nodes, ...). The header
# records the git commit and GOMAXPROCS so snapshots from different
# commits or core counts are never compared blindly.
#
# Usage: scripts/bench_json.sh [extra go test args...]
#   BENCH_OUT=path    override the output file
#   BENCH_PATTERN=re  override the benchmark regex (default: the E01–E15 set)
#   BENCH_TIME=d      override -benchtime (default 1s)
#
# The JSON is a snapshot for EXPERIMENTS.md and the CI artifact, not a
# benchstat replacement: re-run on the same machine before comparing.
set -eu

cd "$(dirname "$0")/.."

pattern="${BENCH_PATTERN:-^BenchmarkE[0-9]+}"
benchtime="${BENCH_TIME:-1s}"
out="${BENCH_OUT:-BENCH_$(date +%Y-%m-%d).json}"
commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
git diff --quiet HEAD 2>/dev/null || commit="$commit-dirty"
maxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc)}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" "$@" . | tee "$tmp"

awk -v date="$(date +%Y-%m-%dT%H:%M:%S%z)" -v commit="$commit" -v maxprocs="$maxprocs" '
BEGIN { n = 0 }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    iters = $2
    extra = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_.-]/, "_", unit)
        extra = extra sprintf(",\"%s\":%s", unit, $i)
    }
    rows[n++] = sprintf("  {\"name\":\"%s\",\"iterations\":%s%s}", name, iters, extra)
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"gomaxprocs\": %s,\n", maxprocs
    printf "  \"goos\": \"%s\", \"goarch\": \"%s\",\n", goos, goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out" >&2
