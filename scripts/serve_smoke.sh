#!/usr/bin/env bash
# End-to-end smoke test of cspserved: boots the service, drives every /v1
# endpoint with the paper's six specs, checks the module cache shows up in
# /metrics, and exercises the SIGTERM drain path. CI runs this; it also
# works locally (needs curl + jq).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8931
BASE="http://$ADDR"
LOG="$(mktemp)"
BIN="$(mktemp -d)/cspserved"

go build -o "$BIN" ./cmd/cspserved

"$BIN" -addr "$ADDR" -timeout 60s >"$LOG" 2>&1 &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "cspserved never became healthy"; cat "$LOG"; exit 1; }
  sleep 0.1
done
echo "== healthy"

# body SPEC ARGS... -> a request JSON embedding the spec source.
body() {
  local spec=$1; shift
  jq -n --rawfile src "specs/$spec" "$@"
}

# /v1/check on every spec that carries asserts (all six do).
for spec in copier.csp protocol.csp multiplier.csp buffers.csp philosophers.csp tokenring.csp; do
  echo "== check $spec"
  body "$spec" '{source: $src, depth: 6}' \
    | curl -fsS "$BASE/v1/check" -d @- | jq -e '.ok == true' >/dev/null
done

# /v1/traces with a root process per spec (multiplier shallow: its
# data-carrying states make deep exploration slow by design).
for pair in copier.csp:copier protocol.csp:protocol multiplier.csp:multiplier:4 \
            buffers.csp:buf1 philosophers.csp:safe tokenring.csp:sys; do
  spec=${pair%%:*}; rest=${pair#*:}; proc=${rest%%:*}; depth=${rest##*:}
  [ "$depth" = "$proc" ] && depth=6
  echo "== traces $spec $proc depth $depth"
  body "$spec" --arg proc "$proc" --argjson depth "$depth" \
      '{source: $src, process: $proc, depth: $depth}' \
    | curl -fsS "$BASE/v1/traces" -d @- | jq -e '.ok == true and (.traces.count >= 1)' >/dev/null
done

# /v1/prove synthesises the paper's §2.1 proofs for both worked examples.
for spec in copier.csp protocol.csp; do
  echo "== prove $spec"
  body "$spec" '{source: $src}' \
    | curl -fsS "$BASE/v1/prove" -d @- | jq -e '.ok == true and (.proofs | length >= 1)' >/dev/null
done

# /v1/refine on the §4 separation pair: the trace-model refinement holds;
# the failures-model one is deliberately refuted — that verdict must come
# back as a structured 200 (ok=false with a counterexample failure), never
# a 5xx. Both responses carry the wire schema stamp.
echo "== refine"
body nondet.csp '{source: $src, impl: "flaky", spec: "vend", depth: 5}' \
  | curl -fsS "$BASE/v1/refine" -d @- \
  | jq -e '.schema == 1 and .ok == true and .refine.model == "traces"' >/dev/null
body nondet.csp '{source: $src, impl: "flaky", spec: "vend", model: "failures", depth: 5}' \
  | curl -fsS "$BASE/v1/refine" -d @- \
  | jq -e '.schema == 1 and .ok == false and .refine.model == "failures"
           and .refine.failure.deadlock == true' >/dev/null

# /v1/batch mixes kinds in one request.
echo "== batch"
jq -n --rawfile a specs/copier.csp --rawfile b specs/protocol.csp \
    '{workers: 2, requests: [
       {kind: "check", source: $a, depth: 5},
       {kind: "traces", source: $b, process: "protocol", depth: 5},
       {kind: "prove", source: $a}]}' \
  | curl -fsS "$BASE/v1/batch" -d @- | jq -e '.ok == true and (.results | length == 3)' >/dev/null

# A repeated spec must hit the module cache, and /metrics must say so.
echo "== metrics"
body copier.csp '{source: $src, depth: 6}' \
  | curl -fsS "$BASE/v1/check" -d @- | jq -e '.cache_hit == true' >/dev/null
curl -fsS "$BASE/metrics" | jq -e '
  .module_cache.hits >= 1 and
  .closure.InternedNodes >= 1 and
  ([.endpoints[].count] | add) >= 12 and
  .endpoints.refine.count >= 2 and
  .models.traces >= 1 and .models.failures >= 1 and
  .statuses["200"] >= 12' >/dev/null

# An over-deep trace listing must come back truncated, never OOM the host.
echo "== truncation"
body philosophers.csp '{source: $src, process: "safe", depth: 30, max_traces: 100}' \
  | curl -fsS "$BASE/v1/traces" -d @- \
  | jq -e '.ok == true and .traces.truncated == true and (.traces.traces | length == 100)' >/dev/null

# SIGTERM must drain and exit 0, reporting the lifecycle on stderr.
echo "== drain"
kill -TERM $PID
wait $PID
grep -q "draining in-flight requests" "$LOG"
grep -q "drained, exiting" "$LOG"

echo "serve smoke: all good"
