#!/usr/bin/env bash
# End-to-end smoke test of the scenario conformance harness: runs the
# committed corpus against its goldens, then proves the journal replay
# contract out of process — record a mixed workload against a journaling
# cspserved, restart it warm over the same store, and require every
# replayed response byte-identical (modulo the volatile fields the
# journal digest already strips). Both binaries are built -race so the
# recording and replay paths run under the detector. CI runs this; it
# also works locally (needs curl + jq).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8933
BASE="http://$ADDR"
LOG="$(mktemp)"
DIR="$(mktemp -d)"
BIN="$DIR/cspserved"
SCEN="$DIR/cspscen"
STORE="$DIR/store"
JOURNAL="$DIR/journal"
trap '[ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null; rm -rf "$DIR" "$LOG"; true' EXIT

go build -race -o "$BIN" ./cmd/cspserved
go build -race -o "$SCEN" ./cmd/cspscen

# The committed corpus must conform to its goldens bit for bit.
echo "== corpus"
"$SCEN" run specs/scenarios

# Regenerating the generated slice of the corpus must be a no-op: the
# generator is seeded, so drift here means nondeterminism crept in.
echo "== gen determinism"
cp -r specs/scenarios/gen "$DIR/gen-before"
"$SCEN" gen -seed 1 -count 200 -out specs/scenarios/gen >/dev/null
diff -r "$DIR/gen-before" specs/scenarios/gen

# Record a workload against a journaling, store-backed server.
echo "== record"
"$BIN" -addr "$ADDR" -store "$STORE" -journal "$JOURNAL" -timeout 60s >"$LOG" 2>&1 &
PID=$!
for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "cspserved never became healthy"; cat "$LOG"; exit 1; }
  sleep 0.1
done

# /v1/version must identify the build and its journal/store wiring.
curl -fsS "$BASE/v1/version" | jq -e '
  .schema == 1 and .wire_schema == 1 and
  .store == true and .journal == true and
  (.go | startswith("go"))' >/dev/null

body() {
  local spec=$1; shift
  jq -n --rawfile src "specs/$spec" "$@"
}
body copier.csp '{source: $src, depth: 6}' \
  | curl -fsS "$BASE/v1/check" -d @- >/dev/null
body protocol.csp '{source: $src, process: "protocol", depth: 5}' \
  | curl -fsS "$BASE/v1/traces" -d @- >/dev/null
body nondet.csp '{source: $src, impl: "flaky", spec: "vend", model: "failures", depth: 5}' \
  | curl -fsS "$BASE/v1/refine" -d @- >/dev/null
body copier.csp '{source: $src}' \
  | curl -fsS "$BASE/v1/prove" -d @- >/dev/null
jq -n --rawfile a specs/buffers.csp \
    '{requests: [{kind: "check", source: $a, depth: 5},
                 {kind: "refine", source: $a, impl: "buf2", spec: "buf1", depth: 5}]}' \
  | curl -fsS "$BASE/v1/batch" -d @- >/dev/null
# Deterministic errors are journaled too and must replay identically.
curl -sS "$BASE/v1/check" -d '{"depth": 5}' >/dev/null
curl -sS "$BASE/v1/traces" -d 'not json' >/dev/null

curl -fsS "$BASE/metrics" | jq -e '.journal.records >= 7' >/dev/null
kill -TERM $PID
wait $PID
unset PID

# Warm restart over the same store; the journal must replay byte-for-byte.
echo "== replay"
"$BIN" -addr "$ADDR" -store "$STORE" -timeout 60s >"$LOG" 2>&1 &
PID=$!
for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "cspserved never became healthy after restart"; cat "$LOG"; exit 1; }
  sleep 0.1
done
"$SCEN" replay -addr "$BASE" "$JOURNAL"/*.cspj

kill -TERM $PID
wait $PID
unset PID

echo "scen smoke: all good"
