// Per-module result caching. The engines are deterministic over the
// sampled domains (EngineRuntime excepted), so a (engine, bound, process)
// triple fully determines a result: resident hosts record each computed
// result on the Module and serve repeats — and artifact-store warm boots —
// without touching the engines. These caches are what the artifact store
// persists; CachedTraces on a deferred module is the path that answers a
// request without ever parsing the source.
package csp

import (
	"sync"

	"cspsat/internal/model"
)

// traceResultKey identifies one deterministic trace computation.
type traceResultKey struct {
	engine  Engine
	depth   int
	process string
}

// refineResultKey identifies one deterministic refinement verdict: the
// semantic model is part of the key because the same (impl, spec, depth)
// triple can hold under traces and fail under failures.
type refineResultKey struct {
	model model.Model
	depth int
	impl  string
	spec  string
}

// resultsCache is the per-Module memo of deterministic results. All maps
// are lazily allocated; values are treated as immutable once stored.
type resultsCache struct {
	mu      sync.Mutex
	traces  map[traceResultKey]*TraceResult
	checks  map[int][]AssertResultJSON
	proves  map[int][]ProveResultJSON
	refines map[refineResultKey]RefineResultJSON
	// onResult, when set, fires after each newly stored result (outside
	// the mutex). The module cache uses it to persist the module's
	// artifact; see ModuleCache.SetStore.
	onResult func()
}

func (rc *resultsCache) setOnResult(f func()) {
	rc.mu.Lock()
	rc.onResult = f
	rc.mu.Unlock()
}

func (rc *resultsCache) notify() {
	rc.mu.Lock()
	f := rc.onResult
	rc.mu.Unlock()
	if f != nil {
		f()
	}
}

// CachedTraces returns the recorded trace result for (engine, depth,
// process), if any. process is the name the result was stored under
// (StoreTraces); depth 0 is normalized to DefaultDepth like everywhere
// else.
func (m *Module) CachedTraces(engine Engine, depth int, process string) (*TraceResult, bool) {
	if depth <= 0 {
		depth = DefaultDepth
	}
	m.res.mu.Lock()
	defer m.res.mu.Unlock()
	r, ok := m.res.traces[traceResultKey{engine, depth, process}]
	return r, ok
}

// StoreTraces records a computed trace result for later CachedTraces hits
// (and, when the module came through a store-backed ModuleCache, persists
// it). EngineRuntime results are sampled walks, not functions of the
// source, and are never recorded.
func (m *Module) StoreTraces(engine Engine, depth int, process string, r *TraceResult) {
	if engine == EngineRuntime || r == nil {
		return
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	key := traceResultKey{engine, depth, process}
	m.res.mu.Lock()
	if _, ok := m.res.traces[key]; ok {
		m.res.mu.Unlock()
		return
	}
	if m.res.traces == nil {
		m.res.traces = map[traceResultKey]*TraceResult{}
	}
	m.res.traces[key] = r
	m.res.mu.Unlock()
	m.res.notify()
}

// CachedCheck returns the recorded CheckAll verdicts for a depth, in the
// stable wire encoding.
func (m *Module) CachedCheck(depth int) ([]AssertResultJSON, bool) {
	if depth <= 0 {
		depth = DefaultDepth
	}
	m.res.mu.Lock()
	defer m.res.mu.Unlock()
	r, ok := m.res.checks[depth]
	return r, ok
}

// StoreCheck records CheckAll verdicts for a depth. The slice is retained;
// callers must not mutate it afterwards.
func (m *Module) StoreCheck(depth int, results []AssertResultJSON) {
	if results == nil {
		return
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	m.res.mu.Lock()
	if _, ok := m.res.checks[depth]; ok {
		m.res.mu.Unlock()
		return
	}
	if m.res.checks == nil {
		m.res.checks = map[int][]AssertResultJSON{}
	}
	m.res.checks[depth] = results
	m.res.mu.Unlock()
	m.res.notify()
}

// CachedProve returns the recorded ProveAsserts verdicts for a validity
// bound, in the stable wire encoding.
func (m *Module) CachedProve(maxLen int) ([]ProveResultJSON, bool) {
	m.res.mu.Lock()
	defer m.res.mu.Unlock()
	r, ok := m.res.proves[maxLen]
	return r, ok
}

// StoreProve records ProveAsserts verdicts for a validity bound. The slice
// is retained; callers must not mutate it afterwards.
func (m *Module) StoreProve(maxLen int, results []ProveResultJSON) {
	if results == nil {
		return
	}
	m.res.mu.Lock()
	if _, ok := m.res.proves[maxLen]; ok {
		m.res.mu.Unlock()
		return
	}
	if m.res.proves == nil {
		m.res.proves = map[int][]ProveResultJSON{}
	}
	m.res.proves[maxLen] = results
	m.res.mu.Unlock()
	m.res.notify()
}

// CachedRefine returns the recorded refinement verdict for (model, depth,
// impl, spec), in the stable wire encoding. impl and spec are the
// canonical process renderings the verdict was stored under.
func (m *Module) CachedRefine(mdl Model, depth int, impl, spec string) (RefineResultJSON, bool) {
	if depth <= 0 {
		depth = DefaultDepth
	}
	m.res.mu.Lock()
	defer m.res.mu.Unlock()
	r, ok := m.res.refines[refineResultKey{mdl, depth, impl, spec}]
	return r, ok
}

// StoreRefine records a refinement verdict for later CachedRefine hits
// (and, when the module came through a store-backed ModuleCache, persists
// it).
func (m *Module) StoreRefine(mdl Model, depth int, impl, spec string, r RefineResultJSON) {
	if depth <= 0 {
		depth = DefaultDepth
	}
	key := refineResultKey{mdl, depth, impl, spec}
	m.res.mu.Lock()
	if _, ok := m.res.refines[key]; ok {
		m.res.mu.Unlock()
		return
	}
	if m.res.refines == nil {
		m.res.refines = map[refineResultKey]RefineResultJSON{}
	}
	m.res.refines[key] = r
	m.res.mu.Unlock()
	m.res.notify()
}

// CachedResultCount reports how many deterministic results the module has
// recorded (trace sets + check blocks + prove blocks + refinement
// verdicts).
func (m *Module) CachedResultCount() int {
	m.res.mu.Lock()
	defer m.res.mu.Unlock()
	return len(m.res.traces) + len(m.res.checks) + len(m.res.proves) + len(m.res.refines)
}
