package csp_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cspsat/internal/gen"
	"cspsat/pkg/csp"
)

// specRoots mirrors scripts/serve_smoke.sh: a root process and depth per
// spec (multiplier shallow — its data-carrying states make deep
// exploration slow by design).
var specRoots = []struct {
	file  string
	proc  string
	depth int
}{
	{"copier.csp", "copier", 6},
	{"protocol.csp", "protocol", 6},
	{"multiplier.csp", "multiplier", 4},
	{"buffers.csp", "buf1", 6},
	{"philosophers.csp", "safe", 6},
	{"tokenring.csp", "sys", 6},
}

func readSpec(t *testing.T, file string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "specs", file))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func storeBackedCache(t *testing.T, dir string) *csp.ModuleCache {
	t.Helper()
	c := csp.NewModuleCache(32)
	st, err := csp.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.SetStore(st, t.Logf)
	return c
}

// TestStoreTierRoundTripSpecs saves every spec's trace sets and verdicts
// through the store tier, reloads them in a fresh cache, and demands
// pointer-canonical trace sets (Same, not just equal) and byte-identical
// verdict encodings against a fresh recompute.
func TestStoreTierRoundTripSpecs(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := csp.Options{NatWidth: 2}

	c1 := storeBackedCache(t, dir)
	for _, sr := range specRoots {
		src := readSpec(t, sr.file)
		mod, _, _, err := c1.Load(ctx, src, opts)
		if err != nil {
			t.Fatalf("%s: %v", sr.file, err)
		}
		p, err := mod.Proc(sr.proc)
		if err != nil {
			t.Fatalf("%s: %v", sr.file, err)
		}
		tr, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: csp.EngineOp, Depth: sr.depth})
		if err != nil {
			t.Fatalf("%s traces: %v", sr.file, err)
		}
		mod.StoreTraces(csp.EngineOp, sr.depth, sr.proc, tr)

		checks, err := mod.CheckAll(ctx, csp.CheckOptions{Depth: sr.depth})
		if err != nil {
			t.Fatalf("%s check: %v", sr.file, err)
		}
		mod.StoreCheck(sr.depth, csp.EncodeAssertResults(checks))
	}
	if st := c1.Stats(); st.StorePuts == 0 {
		t.Fatalf("no artifacts persisted: %+v", st)
	}

	c2 := storeBackedCache(t, dir)
	for _, sr := range specRoots {
		src := readSpec(t, sr.file)
		mod2, _, hit, err := c2.Load(ctx, src, opts)
		if err != nil {
			t.Fatalf("%s reload: %v", sr.file, err)
		}
		if !hit {
			t.Fatalf("%s reload missed the store tier", sr.file)
		}
		cached, ok := mod2.CachedTraces(csp.EngineOp, sr.depth, sr.proc)
		if !ok {
			t.Fatalf("%s: no cached traces after store hit", sr.file)
		}
		p, err := mod2.Proc(sr.proc)
		if err != nil {
			t.Fatalf("%s: %v", sr.file, err)
		}
		fresh, err := mod2.Traces(ctx, p, csp.EngineOptions{Engine: csp.EngineOp, Depth: sr.depth})
		if err != nil {
			t.Fatalf("%s recompute: %v", sr.file, err)
		}
		// First, the frozen view (no thaw yet): traversal off the stored
		// arena image must be byte-identical to the fresh computation.
		view := cached.View()
		if view.Size() != fresh.Set.Size() || view.MaxLen() != fresh.Set.MaxLen() {
			t.Fatalf("%s: frozen view (%d,%d) vs fresh (%d,%d)", sr.file,
				view.Size(), view.MaxLen(), fresh.Set.Size(), fresh.Set.MaxLen())
		}
		gotTr, gotTrunc := view.TracesN(500)
		wantTr, wantTrunc := fresh.Set.TracesN(500)
		if gotTrunc != wantTrunc || len(gotTr) != len(wantTr) {
			t.Fatalf("%s: frozen listing shape differs", sr.file)
		}
		for i := range gotTr {
			if gotTr[i].Compare(wantTr[i]) != 0 {
				t.Fatalf("%s: frozen listing diverges at %d: %v vs %v", sr.file, i, gotTr[i], wantTr[i])
			}
		}
		// Then thaw and demand pointer identity: the rebuilt trie must
		// re-intern onto the canonical nodes a fresh computation yields.
		if !cached.TraceSet().Same(fresh.Set) {
			t.Fatalf("%s: rehydrated trace set is not pointer-canonical with recompute", sr.file)
		}

		cachedChecks, ok := mod2.CachedCheck(sr.depth)
		if !ok {
			t.Fatalf("%s: no cached check verdicts", sr.file)
		}
		freshChecks, err := mod2.CheckAll(ctx, csp.CheckOptions{Depth: sr.depth})
		if err != nil {
			t.Fatalf("%s recheck: %v", sr.file, err)
		}
		got, _ := json.Marshal(cachedChecks)
		want, _ := json.Marshal(csp.EncodeAssertResults(freshChecks))
		if string(got) != string(want) {
			t.Fatalf("%s: verdicts differ after round trip:\n got %s\nwant %s", sr.file, got, want)
		}
	}
	if st := c2.Stats(); st.StoreHits != uint64(len(specRoots)) {
		t.Fatalf("store hits = %d, want %d: %+v", st.StoreHits, len(specRoots), st)
	}
}

// TestStoreTierProveRoundTrip persists §2.1 prover verdicts for the two
// worked examples and checks byte-identity after reload.
func TestStoreTierProveRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := csp.Options{NatWidth: 2}
	const maxLen = 3

	c1 := storeBackedCache(t, dir)
	for _, file := range []string{"copier.csp", "protocol.csp"} {
		src := readSpec(t, file)
		mod, _, _, err := c1.Load(ctx, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		results, err := mod.ProveAsserts(ctx, csp.CheckOptions{}, nil)
		if err != nil {
			t.Fatalf("%s prove: %v", file, err)
		}
		mod.StoreProve(maxLen, csp.EncodeProveResults(results))
	}

	c2 := storeBackedCache(t, dir)
	for _, file := range []string{"copier.csp", "protocol.csp"} {
		src := readSpec(t, file)
		mod2, _, hit, err := c2.Load(ctx, src, opts)
		if err != nil || !hit {
			t.Fatalf("%s reload: hit=%v err=%v", file, hit, err)
		}
		cached, ok := mod2.CachedProve(maxLen)
		if !ok {
			t.Fatalf("%s: no cached prove verdicts", file)
		}
		fresh, err := mod2.ProveAsserts(ctx, csp.CheckOptions{}, nil)
		if err != nil {
			t.Fatalf("%s reprove: %v", file, err)
		}
		got, _ := json.Marshal(cached)
		want, _ := json.Marshal(csp.EncodeProveResults(fresh))
		if string(got) != string(want) {
			t.Fatalf("%s: prover verdicts differ:\n got %s\nwant %s", file, got, want)
		}
	}
}

// TestStoreTierPropertyGen round-trips random generated modules through
// the store: for each term, save its op- and denote-engine trace sets,
// reload in a fresh cache, and demand Same-pointer trace sets against a
// recompute.
func TestStoreTierPropertyGen(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	opts := csp.Options{NatWidth: 2}

	for i := 0; i < 25; i++ {
		m, p := gen.Module(rng, gen.Config{})
		src := m.String()
		procKey := p.String()

		dir := t.TempDir()
		c1 := storeBackedCache(t, dir)
		mod, _, _, err := c1.Load(ctx, src, opts)
		if err != nil {
			// gen emits reparseable modules (internal/gen tests); a parse
			// failure here is a real bug, not generator noise.
			t.Fatalf("case %d: load: %v\n%s", i, err, src)
		}
		for _, engine := range []csp.Engine{csp.EngineOp, csp.EngineDenote} {
			tr, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: engine, Depth: 5})
			if err != nil {
				t.Fatalf("case %d %v: %v\n%s", i, engine, err, src)
			}
			mod.StoreTraces(engine, 5, procKey, tr)
		}

		c2 := storeBackedCache(t, dir)
		mod2, _, hit, err := c2.Load(ctx, src, opts)
		if err != nil || !hit {
			t.Fatalf("case %d: reload hit=%v err=%v", i, hit, err)
		}
		for _, engine := range []csp.Engine{csp.EngineOp, csp.EngineDenote} {
			cached, ok := mod2.CachedTraces(engine, 5, procKey)
			if !ok {
				t.Fatalf("case %d %v: cached traces missing", i, engine)
			}
			fresh, err := mod2.Traces(ctx, p, csp.EngineOptions{Engine: engine, Depth: 5})
			if err != nil {
				t.Fatalf("case %d %v recompute: %v", i, engine, err)
			}
			if view := cached.View(); view.Size() != fresh.Set.Size() {
				t.Fatalf("case %d %v: frozen view size %d, fresh %d\n%s",
					i, engine, view.Size(), fresh.Set.Size(), src)
			}
			if !cached.TraceSet().Same(fresh.Set) {
				t.Fatalf("case %d %v: rehydrated set not pointer-canonical\n%s", i, engine, src)
			}
			if engine == csp.EngineDenote && cached.Iterations != fresh.Iterations {
				t.Fatalf("case %d: iterations %d != %d", i, cached.Iterations, fresh.Iterations)
			}
		}
	}
}

// TestStoreTierCorruptArtifact flips a byte in a persisted artifact and
// hammers the fresh cache with concurrent loads: every request must
// succeed by recompute (never fail, never panic), the artifact must be
// quarantined, and the recomputed results must match a clean compute —
// i.e. the failed decode polluted nothing. Run under -race in CI.
func TestStoreTierCorruptArtifact(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := csp.Options{NatWidth: 2}
	src := readSpec(t, "copier.csp")
	key := csp.SourceHash(src, opts)

	c1 := storeBackedCache(t, dir)
	mod, _, _, err := c1.Load(ctx, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mod.Proc("copier")
	if err != nil {
		t.Fatal(err)
	}
	want, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: csp.EngineOp, Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	mod.StoreTraces(csp.EngineOp, 6, "copier", want)

	// Flip one byte mid-file.
	path := filepath.Join(dir, key+".cspa")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := storeBackedCache(t, dir)
	const n = 8
	var wg sync.WaitGroup
	mods := make([]*csp.Module, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			mods[i], _, _, errs[i] = c2.Load(ctx, src, opts)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("load %d failed on a corrupt artifact: %v", i, errs[i])
		}
		if mods[i] != mods[0] {
			t.Fatalf("load %d: singleflight broke across the corrupt fallback", i)
		}
	}
	st := c2.Stats()
	if st.StoreCorrupt == 0 {
		t.Fatalf("corrupt artifact not counted: %+v", st)
	}
	if st.StoreHits != 0 {
		t.Fatalf("corrupt artifact reported as a store hit: %+v", st)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
	// The recompute re-persisted a clean artifact under the same key: a
	// third cache must hit the store again.
	c3 := storeBackedCache(t, dir)
	if _, _, hit, err := c3.Load(ctx, src, opts); err != nil || !hit {
		t.Fatalf("post-recompute load: hit=%v err=%v", hit, err)
	}

	// The recomputed module behaves identically to the clean one.
	p2, err := mods[0].Proc("copier")
	if err != nil {
		t.Fatal(err)
	}
	got, err := mods[0].Traces(ctx, p2, csp.EngineOptions{Engine: csp.EngineOp, Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Set.Same(want.Set) {
		t.Fatalf("recompute after corruption diverged from clean compute")
	}
}

// TestStoreTierVersionSkew rewrites an artifact with a bumped version and
// checks the load falls back to recompute, logging but not quarantining.
func TestStoreTierVersionSkew(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := csp.Options{NatWidth: 2}
	src := "p = a!0 -> p\n"
	key := csp.SourceHash(src, opts)

	c1 := storeBackedCache(t, dir)
	if _, _, _, err := c1.Load(ctx, src, opts); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".cspa")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := csp.RestampArtifactVersionForTest(data, 99)
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := storeBackedCache(t, dir)
	if _, _, hit, err := c2.Load(ctx, src, opts); err != nil || hit {
		t.Fatalf("skewed load: hit=%v err=%v", hit, err)
	}
	st := c2.Stats()
	if st.StoreCorrupt != 1 {
		t.Fatalf("version skew not counted: %+v", st)
	}
	// Not quarantined: the file stays for the next persist to overwrite.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("skewed artifact was removed: %v", err)
	}
}

// TestWarmBoot persists several modules, warm-boots a fresh cache, and
// checks everything is resident (memory-tier hits, no store reads on the
// subsequent loads).
func TestWarmBoot(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := csp.Options{NatWidth: 2}
	srcs := []string{
		"p = a!0 -> p\n",
		"q = b!1 -> q\n",
		strings.Repeat("r = c!2 -> r\n", 1),
	}

	c1 := storeBackedCache(t, dir)
	for _, src := range srcs {
		if _, _, _, err := c1.Load(ctx, src, opts); err != nil {
			t.Fatal(err)
		}
	}

	c2 := storeBackedCache(t, dir)
	loaded, skipped, err := c2.WarmBoot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != len(srcs) || skipped != 0 {
		t.Fatalf("WarmBoot = (%d, %d), want (%d, 0)", loaded, skipped, len(srcs))
	}
	before := c2.Stats()
	for _, src := range srcs {
		if _, _, hit, err := c2.Load(ctx, src, opts); err != nil || !hit {
			t.Fatalf("post-boot load: hit=%v err=%v", hit, err)
		}
	}
	after := c2.Stats()
	if after.StoreHits != before.StoreHits {
		t.Fatalf("post-boot loads touched the disk tier: %+v -> %+v", before, after)
	}
	if after.Hits-before.Hits != uint64(len(srcs)) {
		t.Fatalf("post-boot loads were not memory hits: %+v -> %+v", before, after)
	}
}
