// Stable JSON encodings of the facade's result types. The internal result
// structs are free to grow and reorder fields; these wire types are the
// compatibility surface cspserved serves and scripts parse, so fields are
// explicitly tagged, enums are strings, and traces are arrays of "c.m"
// event strings rather than opaque renderings.
package csp

import (
	"cspsat/internal/failures"
	"cspsat/internal/progress"
)

// WireSchema is the version stamped as "schema" into every /v1/* JSON
// response body. The compatibility rule (DESIGN.md §3.6): within one
// schema version fields are only ever added, never renamed, retyped, or
// repurposed, so clients may ignore unknown fields and must tolerate new
// ones; any breaking change bumps this number.
const WireSchema = 1

// TraceJSON is one visible trace as a sequence of "chan.msg" events.
type TraceJSON []string

// EncodeTrace renders a trace for the wire; nil traces encode as an empty
// (non-null) sequence.
func EncodeTrace(t Trace) TraceJSON {
	out := make(TraceJSON, 0, len(t))
	for _, e := range t {
		out = append(out, e.String())
	}
	return out
}

// TraceSetJSON is the wire form of a TraceResult.
type TraceSetJSON struct {
	// Engine names the engine that produced the set: "op", "denote",
	// "runtime".
	Engine string `json:"engine"`
	// Traces lists the requested traces (all, or only the maximal ones),
	// up to the encoder's limit.
	Traces []TraceJSON `json:"traces"`
	// Truncated reports that the set held more traces than the limit and
	// Traces lists only a subset. Count still reports the full set.
	Truncated bool `json:"truncated,omitempty"`
	// Count is the total number of traces in the set, prefixes included,
	// independent of how many Traces lists. Deep tries can hold more than
	// MaxInt traces; Count saturates there.
	Count int `json:"count"`
	// MaxLen is the length of the longest trace in the set.
	MaxLen int `json:"max_len"`
	// Iterations is the approximation-chain pass count (denote only).
	Iterations int `json:"iterations,omitempty"`
	// Events is the total communication count of the walk (runtime only).
	Events int `json:"events,omitempty"`
}

// EncodeTraceSet renders a TraceResult. With maxOnly, only maximal traces
// are listed (Count still reports the full set). limit bounds how many
// traces the listing holds (<= 0: unlimited); hash-consed sets can hold
// astronomically more members than any response could carry, so servers
// must pass a limit.
func EncodeTraceSet(r *TraceResult, maxOnly bool, limit int) TraceSetJSON {
	// View, not Set: a store-backed result encodes straight off the frozen
	// arena — the response is byte-identical either way (the View contract),
	// and serving never forces a rebuild.
	v := r.View()
	traces, truncated := v.TracesN(limit)
	if maxOnly {
		traces, truncated = v.TracesMaxN(limit)
	}
	out := TraceSetJSON{
		Engine:     r.Engine.String(),
		Truncated:  truncated,
		Traces:     make([]TraceJSON, 0, len(traces)),
		Count:      v.Size(),
		MaxLen:     v.MaxLen(),
		Iterations: r.Iterations,
		Events:     r.Events,
	}
	for _, t := range traces {
		out.Traces = append(out.Traces, EncodeTrace(t))
	}
	return out
}

// ViolationJSON is a counterexample to P sat R.
type ViolationJSON struct {
	Trace TraceJSON `json:"trace"`
	// Hist renders the per-channel histories ch(trace) the assertion was
	// evaluated against.
	Hist string `json:"hist"`
}

// RefusalJSON is a refusal-level counterexample: a stable state reached
// after Trace whose acceptance (the complete set of events it offers) is
// Acceptance — empty for a deadlock.
type RefusalJSON struct {
	Trace TraceJSON `json:"trace"`
	// Acceptance lists every event the violating stable state offers, as
	// "chan.msg" strings; empty means the state is deadlocked.
	Acceptance []string `json:"acceptance"`
	// Deadlock reports that the acceptance is empty.
	Deadlock bool `json:"deadlock,omitempty"`
}

func encodeAcceptance(a failures.Acceptance) []string {
	out := make([]string, 0, len(a))
	for _, e := range a {
		out = append(out, e.String())
	}
	return out
}

// SatResultJSON is the wire form of a sat-check Result.
type SatResultJSON struct {
	OK             bool           `json:"ok"`
	Counterexample *ViolationJSON `json:"counterexample,omitempty"`
	// Refusal is the counterexample of a behavioural assertion checked
	// under the failures model; Counterexample and Refusal are mutually
	// exclusive.
	Refusal *RefusalJSON `json:"refusal,omitempty"`
	// Model names the semantic model the verdict was computed under.
	Model string `json:"model"`
	// Vacuous reports a behavioural assertion evaluated under the trace
	// model, where it holds for want of expressiveness.
	Vacuous       bool `json:"vacuous,omitempty"`
	TracesChecked int  `json:"traces_checked"`
	Depth         int  `json:"depth"`
}

// EncodeSatResult renders a model-checking verdict.
func EncodeSatResult(r CheckResult) SatResultJSON {
	out := SatResultJSON{
		OK:            r.OK,
		Model:         r.Model.String(),
		Vacuous:       r.Vacuous,
		TracesChecked: r.TracesChecked,
		Depth:         r.Depth,
	}
	if r.Counter != nil {
		out.Counterexample = &ViolationJSON{
			Trace: EncodeTrace(r.Counter.Trace),
			Hist:  r.Counter.Hist.String(),
		}
	}
	if r.Refusal != nil {
		out.Refusal = &RefusalJSON{
			Trace:      EncodeTrace(r.Refusal.Trace),
			Acceptance: encodeAcceptance(r.Refusal.Acceptance),
			Deadlock:   len(r.Refusal.Acceptance) == 0,
		}
	}
	return out
}

// RefineResultJSON is the wire form of a refinement verdict.
type RefineResultJSON struct {
	OK bool `json:"ok"`
	// Model names the semantic model the verdict was computed under.
	Model string `json:"model"`
	// Witness is a trace of the implementation the specification cannot
	// perform — or, for a failures-level violation, the trace after which
	// the refusals come apart — when OK is false.
	Witness TraceJSON `json:"witness,omitempty"`
	// Failure is the counterexample failure (s, X) of a failures-model
	// violation: after Witness the implementation may stop in a stable
	// state offering exactly Acceptance (refusing everything else), which
	// no specification acceptance permits. Nil for trace-level violations.
	Failure *RefusalJSON `json:"failure,omitempty"`
	Depth   int          `json:"depth"`
}

// EncodeRefineResult renders a refinement verdict.
func EncodeRefineResult(r RefineResult) RefineResultJSON {
	out := RefineResultJSON{OK: r.OK, Model: r.Model.String(), Depth: r.Depth}
	if r.Witness != nil {
		out.Witness = EncodeTrace(r.Witness)
	}
	if r.Failure != nil && r.Failure.ImplAcceptance != nil {
		out.Failure = &RefusalJSON{
			Trace:      EncodeTrace(r.Failure.Trace),
			Acceptance: encodeAcceptance(*r.Failure.ImplAcceptance),
			Deadlock:   len(*r.Failure.ImplAcceptance) == 0,
		}
	}
	return out
}

// AssertResultJSON is the wire form of one checked assert declaration.
type AssertResultJSON struct {
	// Decl is the assert clause as written in the source.
	Decl string `json:"decl"`
	// Kind is "sat" for sat-asserts, "refine" for refinement asserts.
	Kind string `json:"kind"`
	OK   bool   `json:"ok"`
	// Sat carries the verdict of a sat-assert, Refine of a refinement
	// assert; exactly one is set.
	Sat    *SatResultJSON    `json:"sat,omitempty"`
	Refine *RefineResultJSON `json:"refine,omitempty"`
}

// EncodeAssertResult renders a CheckAll entry.
func EncodeAssertResult(r AssertResult) AssertResultJSON {
	out := AssertResultJSON{Decl: r.Decl.String(), OK: r.OK()}
	if r.Refine != nil {
		out.Kind = "refine"
		rr := EncodeRefineResult(*r.Refine)
		out.Refine = &rr
	} else {
		out.Kind = "sat"
		sr := EncodeSatResult(r.Result)
		out.Sat = &sr
	}
	return out
}

// EncodeAssertResults renders a CheckAll result slice, preserving
// declaration order.
func EncodeAssertResults(results []AssertResult) []AssertResultJSON {
	out := make([]AssertResultJSON, 0, len(results))
	for _, r := range results {
		out = append(out, EncodeAssertResult(r))
	}
	return out
}

// ProveResultJSON is the wire form of one automatic-prover outcome.
type ProveResultJSON struct {
	Decl string `json:"decl"`
	// Name is the defined process the claim is about; Assertion renders
	// the claim proved or attempted.
	Name      string `json:"name"`
	Assertion string `json:"assertion"`
	// Method is "recursion", "recursion (joint)", or "network glue".
	Method string `json:"method"`
	OK     bool   `json:"ok"`
	// Error is the synthesis or checking failure when OK is false.
	Error string `json:"error,omitempty"`
}

// EncodeProveResults renders ProveAsserts outcomes, preserving order.
func EncodeProveResults(results []ProveResult) []ProveResultJSON {
	out := make([]ProveResultJSON, 0, len(results))
	for _, r := range results {
		j := ProveResultJSON{
			Decl:      r.Decl,
			Name:      r.Name,
			Assertion: r.A.String(),
			Method:    r.Method,
			OK:        r.OK,
		}
		if r.Err != nil {
			j.Error = r.Err.Error()
		}
		out = append(out, j)
	}
	return out
}

// ProgressEventJSON is the wire form of one progress snapshot; zero-valued
// counters are elided, so each stage reports only the counters it fills.
type ProgressEventJSON struct {
	Stage                 string `json:"stage"`
	StatesExpanded        int    `json:"states_expanded,omitempty"`
	Frontier              int    `json:"frontier,omitempty"`
	Depth                 int    `json:"depth,omitempty"`
	ChainIterations       int    `json:"chain_iterations,omitempty"`
	ObligationsDischarged int    `json:"obligations_discharged,omitempty"`
	Items                 int    `json:"items,omitempty"`
	Total                 int    `json:"total,omitempty"`
	ElapsedMS             int64  `json:"elapsed_ms"`
	Done                  bool   `json:"done,omitempty"`
}

// EncodeProgress renders a Tracker snapshot (the latest event per engine
// stage, in first-report order).
func EncodeProgress(events []progress.Event) []ProgressEventJSON {
	out := make([]ProgressEventJSON, 0, len(events))
	for _, e := range events {
		out = append(out, ProgressEventJSON{
			Stage:                 e.Stage,
			StatesExpanded:        e.StatesExpanded,
			Frontier:              e.Frontier,
			Depth:                 e.Depth,
			ChainIterations:       e.ChainIterations,
			ObligationsDischarged: e.ObligationsDischarged,
			Items:                 e.Items,
			Total:                 e.Total,
			ElapsedMS:             e.Elapsed.Milliseconds(),
			Done:                  e.Done,
		})
	}
	return out
}
