package csp

import (
	"context"
	"testing"
)

// TestStoreHitSkipsParse is the white-box half of the warm-boot claim: a
// module rehydrated from the store must not parse its source until an
// engine actually needs the AST — served-from-cache requests never touch
// the parser or the denoters.
func TestStoreHitSkipsParse(t *testing.T) {
	ctx := context.Background()
	opts := Options{NatWidth: 2}
	src := "p = a!0 -> a!1 -> p\n"

	c1 := NewModuleCache(8)
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c1.SetStore(st, t.Logf)
	mod, _, _, err := c1.Load(ctx, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mod.Proc("p")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := mod.Traces(ctx, p, EngineOptions{Engine: EngineOp, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	mod.StoreTraces(EngineOp, 4, "p", tr)

	c2 := NewModuleCache(8)
	c2.SetStore(st, t.Logf)
	mod2, _, hit, err := c2.Load(ctx, src, opts)
	if err != nil || !hit {
		t.Fatalf("reload: hit=%v err=%v", hit, err)
	}
	if mod2.sys != nil {
		t.Fatalf("store hit parsed the source eagerly")
	}
	if _, ok := mod2.CachedTraces(EngineOp, 4, "p"); !ok {
		t.Fatalf("cached traces missing after store hit")
	}
	if mod2.sys != nil {
		t.Fatalf("CachedTraces forced a parse")
	}
	// An engine request beyond the precomputed results forces the lazy
	// parse, transparently.
	if _, err := mod2.Proc("p"); err != nil {
		t.Fatal(err)
	}
	if mod2.sys == nil {
		t.Fatalf("Proc did not force the parse")
	}
}
