package csp_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cspsat/pkg/csp"
)

const nondetSpec = `
vend = coin?x:NAT -> choc!x -> vend
flaky = vend |~| STOP
`

func loadNondet(t *testing.T) *csp.Module {
	t.Helper()
	mod, err := csp.Load(context.Background(), nondetSpec, csp.Options{NatWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestParseModel(t *testing.T) {
	cases := []struct {
		name string
		want csp.Model
		err  bool
	}{
		{"", csp.ModelTraces, false},
		{"traces", csp.ModelTraces, false},
		{"failures", csp.ModelFailures, false},
		{"divergences", 0, true},
	}
	for _, tc := range cases {
		got, err := csp.ParseModel(tc.name)
		if tc.err {
			if err == nil {
				t.Errorf("ParseModel(%q): want error", tc.name)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
	}
	for _, m := range csp.KnownModels() {
		back, err := csp.ParseModel(m.String())
		if err != nil || back != m {
			t.Errorf("model %v does not round-trip through its name: %v, %v", m, back, err)
		}
	}
}

// TestRefineVerdicts drives Module.Refine through both models on the §4
// pair: a completed check always returns (verdict, nil) — the negative
// verdict travels as Refinement.Err(), wrapping ErrRefinementFailed.
func TestRefineVerdicts(t *testing.T) {
	mod := loadNondet(t)
	ctx := context.Background()
	impl, err := mod.Proc("flaky")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := mod.Proc("vend")
	if err != nil {
		t.Fatal(err)
	}

	tr, err := mod.Refine(ctx, impl, spec, csp.CheckOptions{Depth: 5})
	if err != nil {
		t.Fatalf("traces refine: %v", err)
	}
	if !tr.OK || tr.Err() != nil {
		t.Fatalf("flaky ⊑T vend must hold: %s", tr.RefineResult)
	}

	fl, err := mod.Refine(ctx, impl, spec, csp.CheckOptions{Model: csp.ModelFailures, Depth: 5})
	if err != nil {
		t.Fatalf("failures refine: %v", err)
	}
	if fl.OK {
		t.Fatal("flaky ⊑F vend must fail")
	}
	verr := fl.Err()
	if !errors.Is(verr, csp.ErrRefinementFailed) {
		t.Fatalf("Err() does not wrap ErrRefinementFailed: %v", verr)
	}
	if fl.Failure == nil || fl.Failure.ImplAcceptance == nil || len(*fl.Failure.ImplAcceptance) != 0 {
		t.Fatalf("want the empty acceptance after <> as counterexample, got %+v", fl.Failure)
	}
	if !strings.Contains(verr.Error(), "offers only {}") {
		t.Errorf("error should carry the counterexample: %v", verr)
	}

	// The opposite direction holds in both models.
	back, err := mod.Refine(ctx, spec, impl, csp.CheckOptions{Model: csp.ModelFailures, Depth: 5})
	if err != nil || !back.OK {
		t.Fatalf("vend ⊑F flaky must hold: %v, %v", back, err)
	}
}

// TestRefineCacheKeyedByModel pins the refine results cache: the same
// (impl, spec, depth) under different models are distinct entries, so a
// failures verdict can never shadow a traces one.
func TestRefineCacheKeyedByModel(t *testing.T) {
	mod := loadNondet(t)
	tr := csp.RefineResultJSON{OK: true, Model: "traces", Depth: 5}
	fl := csp.RefineResultJSON{OK: false, Model: "failures", Depth: 5}
	mod.StoreRefine(csp.ModelTraces, 5, "flaky", "vend", tr)
	mod.StoreRefine(csp.ModelFailures, 5, "flaky", "vend", fl)

	got, ok := mod.CachedRefine(csp.ModelTraces, 5, "flaky", "vend")
	if !ok || !got.OK || got.Model != "traces" {
		t.Fatalf("traces entry: %+v, ok=%v", got, ok)
	}
	got, ok = mod.CachedRefine(csp.ModelFailures, 5, "flaky", "vend")
	if !ok || got.OK || got.Model != "failures" {
		t.Fatalf("failures entry: %+v, ok=%v", got, ok)
	}
	if _, ok := mod.CachedRefine(csp.ModelFailures, 6, "flaky", "vend"); ok {
		t.Fatal("different depth must miss")
	}
}
