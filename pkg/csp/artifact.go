// Module ↔ store.Artifact conversion. internal/store knows nothing about
// modules or engines (it traffics in tries, symbols, and opaque verdict
// blobs); this file is the bridge: flattening a Module's recorded results
// into an artifact for persisting, and rehydrating an artifact into a
// deferred Module whose caches are pre-warmed — the warm-boot path that
// serves requests without parsing or denoting anything.
package csp

import (
	"encoding/json"
	"fmt"
	"sort"

	"cspsat/internal/store"
)

// ArtifactStore re-exports the on-disk content-addressed store so hosts
// (cspserved, the CLI tools) can stay on the facade import.
type ArtifactStore = store.Store

// OpenStore opens (creating if needed) an artifact store directory for
// attaching to a ModuleCache via SetStore.
func OpenStore(dir string) (*ArtifactStore, error) { return store.Open(dir) }

// engineFromName is the inverse of Engine.String for the storable engines.
func engineFromName(name string) (Engine, bool) {
	switch name {
	case "op":
		return EngineOp, true
	case "denote":
		return EngineDenote, true
	}
	return 0, false
}

// buildArtifact flattens the module's source and recorded results into a
// store artifact under the given content address. It fails for modules
// without source text (FromModule/FromSystem) — they have no stable
// address to store under.
func (m *Module) buildArtifact(key string, createdUnix int64) (*store.Artifact, error) {
	if m.src == "" {
		return nil, fmt.Errorf("csp: module has no source text to persist")
	}
	b := store.NewBuilder(key, m.src, m.opts.NatWidth, createdUnix)

	m.res.mu.Lock()
	defer m.res.mu.Unlock()

	// Deterministic artifact bytes for identical result sets: flatten in
	// sorted key order.
	tkeys := make([]traceResultKey, 0, len(m.res.traces))
	for k := range m.res.traces {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool {
		a, b := tkeys[i], tkeys[j]
		if a.engine != b.engine {
			return a.engine < b.engine
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.process < b.process
	})
	for _, k := range tkeys {
		r := m.res.traces[k]
		// TraceSet, not Set: a store-rehydrated result being re-persisted
		// (a warm module that computed something new) thaws here — the
		// write side is the one place frozen data rebuilds through the
		// interner. Pure serve traffic never reaches this.
		b.AddTraceRoot(k.engine.String(), k.depth, k.process, r.TraceSet(), r.Iterations)
	}

	depths := make([]int, 0, len(m.res.checks))
	for d := range m.res.checks {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		blob, err := json.Marshal(m.res.checks[d])
		if err != nil {
			return nil, fmt.Errorf("csp: encoding check verdicts: %w", err)
		}
		b.AddCheck(d, blob)
	}

	lens := make([]int, 0, len(m.res.proves))
	for l := range m.res.proves {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	for _, l := range lens {
		blob, err := json.Marshal(m.res.proves[l])
		if err != nil {
			return nil, fmt.Errorf("csp: encoding prove verdicts: %w", err)
		}
		b.AddProve(l, blob)
	}

	rkeys := make([]refineResultKey, 0, len(m.res.refines))
	for k := range m.res.refines {
		rkeys = append(rkeys, k)
	}
	sort.Slice(rkeys, func(i, j int) bool {
		a, b := rkeys[i], rkeys[j]
		if a.model != b.model {
			return a.model < b.model
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		if a.impl != b.impl {
			return a.impl < b.impl
		}
		return a.spec < b.spec
	})
	for _, k := range rkeys {
		blob, err := json.Marshal(m.res.refines[k])
		if err != nil {
			return nil, fmt.Errorf("csp: encoding refinement verdict: %w", err)
		}
		b.AddRefinement(k.model.String(), k.depth, k.impl, k.spec, blob)
	}

	return b.Artifact()
}

// moduleFromArtifact rehydrates a decoded artifact into a deferred Module
// whose trace results stay frozen: each root is an arena view traversing
// the stored image in place — nothing is re-interned, nothing rebuilt —
// and thaws back to a pointer-canonical interned set only if a write path
// asks (TraceResult.TraceSet). Verdict blobs are decoded back into the
// wire types, and the source is retained for a lazy parse should a request
// need more than the precomputed results. The artifact's NatWidth is the
// load option baked into its key, so the rehydrated module behaves exactly
// like one loaded with those options.
func moduleFromArtifact(art *store.Artifact) (*Module, error) {
	m := newDeferred(art.Source, Options{NatWidth: art.NatWidth})
	m.createdUnix = art.CreatedUnix

	for _, r := range art.TraceRoots {
		engine, ok := engineFromName(r.Engine)
		if !ok {
			return nil, fmt.Errorf("csp: artifact names unknown engine %q", r.Engine)
		}
		view, err := art.RootView(r)
		if err != nil {
			return nil, err
		}
		m.StoreTraces(engine, int(r.Depth), r.Process, &TraceResult{
			frozen:     view,
			Engine:     engine,
			Iterations: int(r.Iterations),
		})
	}
	for _, c := range art.Checks {
		var results []AssertResultJSON
		if err := json.Unmarshal(c.Results, &results); err != nil {
			return nil, fmt.Errorf("csp: decoding check verdicts: %w", err)
		}
		m.StoreCheck(int(c.Depth), results)
	}
	for _, p := range art.Proves {
		var results []ProveResultJSON
		if err := json.Unmarshal(p.Results, &results); err != nil {
			return nil, fmt.Errorf("csp: decoding prove verdicts: %w", err)
		}
		m.StoreProve(int(p.MaxLen), results)
	}
	for _, rf := range art.Refinements {
		mdl, err := ParseModel(rf.Model)
		if err != nil {
			return nil, fmt.Errorf("csp: artifact names unknown model %q", rf.Model)
		}
		var result RefineResultJSON
		if err := json.Unmarshal(rf.Result, &result); err != nil {
			return nil, fmt.Errorf("csp: decoding refinement verdict: %w", err)
		}
		m.StoreRefine(mdl, int(rf.Depth), rf.Impl, rf.Spec, result)
	}
	return m, nil
}
