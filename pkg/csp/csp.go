// Package csp is the public facade of this repository: one entry point
// over the parser, the three trace engines (operational explorer,
// denotational approximation chain, goroutine runtime), the model checker,
// the proof checker, and the stable-failures extension.
//
// The engines proliferated their own call conventions as they were built
// (op.Traces vs sem.Denoter vs runtime.Run, each with positional
// arguments); this package replaces those with context-first methods on a
// loaded Module, selected and tuned through options structs:
//
//	mod, err := csp.LoadFile(ctx, "specs/protocol.csp", csp.Options{NatWidth: 2})
//	p, err := mod.Proc("protocol")
//	tr, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: csp.EngineOp, Depth: 8, Workers: 4})
//	res, err := mod.CheckAll(ctx, csp.CheckOptions{Depth: 8, Workers: 4})
//
// Every method takes a context.Context and returns promptly after
// cancellation with an error wrapping ErrCanceled; Workers > 1 fans the
// underlying engine across a worker pool over the sharded intern tables
// (DESIGN.md §3.2). Failure classes are exposed as sentinel errors
// (ErrParse, ErrDepthExceeded, ErrCanceled, ErrObligationFailed) for
// errors.Is dispatch.
package csp

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"cspsat/internal/assertion"
	"cspsat/internal/check"
	"cspsat/internal/closure"
	"cspsat/internal/closure/frozen"
	"cspsat/internal/core"
	"cspsat/internal/csperr"
	"cspsat/internal/failures"
	"cspsat/internal/model"
	"cspsat/internal/op"
	"cspsat/internal/parser"
	"cspsat/internal/pool"
	"cspsat/internal/progress"
	"cspsat/internal/proof"
	"cspsat/internal/runtime"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

// Sentinel errors for the facade's failure classes. Every error crossing
// the package boundary wraps exactly one of these (or is an I/O error from
// the operating system), so callers dispatch with errors.Is instead of
// string matching.
var (
	// ErrParse wraps every lexical, syntactic, and assert-resolution
	// failure from Load/LoadFile.
	ErrParse = csperr.ErrParse
	// ErrDepthExceeded wraps engine failures where a configured bound was
	// hit (τ-closure state caps, non-stabilising approximation chains).
	ErrDepthExceeded = csperr.ErrDepthExceeded
	// ErrCanceled wraps every error caused by context cancellation or a
	// deadline expiring.
	ErrCanceled = csperr.ErrCanceled
	// ErrObligationFailed wraps proof-checking failures whose root cause is
	// a pure side condition the bounded-validity oracle refuted.
	ErrObligationFailed = csperr.ErrObligationFailed
	// ErrDeadline refines ErrCanceled when the cancellation cause was a
	// deadline expiring (a -timeout flag, a server request budget). Errors
	// carrying it also match ErrCanceled.
	ErrDeadline = csperr.ErrDeadline
	// ErrInterrupted refines ErrCanceled when the cancellation cause was an
	// external interrupt (Ctrl-C, SIGTERM, a client disconnecting). Errors
	// carrying it also match ErrCanceled.
	ErrInterrupted = csperr.ErrInterrupted
	// ErrRefinementFailed marks a completed refinement check whose verdict
	// is "does not refine". It describes a negative verdict, not an engine
	// fault: Module.Refine returns the verdict with a nil error, and
	// Refinement.Err wraps this sentinel for callers that want an error.
	ErrRefinementFailed = csperr.ErrRefinementFailed
)

// Aliases re-exporting the result and callback types the facade's methods
// traffic in, so callers need only import this package.
type (
	// TraceSet is a canonical prefix-closed trace set (a hash-consed trie;
	// pointer equality is structural equality, see TraceSet.Same).
	TraceSet = closure.Set
	// Proc is a process expression.
	Proc = syntax.Proc
	// Assertion is a predicate over traces (the paper's R in "P sat R").
	Assertion = assertion.A
	// Proof is a proof object for the §2.1 inference rules.
	Proof = proof.Proof
	// Claim is a verified conclusion "P sat R".
	Claim = proof.Claim
	// Obligation names one proof for batch checking.
	Obligation = proof.Obligation
	// BatchResult is the per-obligation outcome of CheckBatch.
	BatchResult = proof.BatchResult
	// CheckResult is a model-checking verdict with counterexample.
	CheckResult = check.Result
	// RefineResult is a trace-refinement verdict with witness.
	RefineResult = check.RefineResult
	// AssertResult pairs an assert declaration with its verdict.
	AssertResult = core.AssertResult
	// AssertDecl is a parsed assert declaration.
	AssertDecl = parser.AssertDecl
	// Progress receives engine progress events; see ProgressEvent.
	Progress = progress.Func
	// ProgressEvent is one progress callback payload.
	ProgressEvent = progress.Event
	// ProgressTracker accumulates the latest event per stage for snapshot
	// reporting (see cspserved's per-request progress).
	ProgressTracker = progress.Tracker
	// CacheStats aggregates the sharded intern/memo table counters.
	CacheStats = closure.CacheStats
	// RunResult is the outcome of executing a process on goroutines.
	RunResult = runtime.Result
	// Monitor observes events during a goroutine run.
	Monitor = runtime.Monitor
	// EventRecord is one communication delivered to a Monitor.
	EventRecord = runtime.EventRecord
	// History is the per-channel communication history a Monitor sees.
	History = trace.History
	// FailuresModel is the §4 stable-failures model of a process.
	FailuresModel = failures.Model
	// FailuresCounterexample distinguishes two failures models.
	FailuresCounterexample = failures.Counterexample
	// Trace is one visible trace.
	Trace = trace.T
	// Deadlock is a reachable stuck configuration.
	Deadlock = op.Deadlock
)

// Engine selects which semantic engine computes a trace set.
type Engine int

const (
	// EngineOp is the operational explorer: exhaustive bounded search of
	// the transition system with τ-closure. The default, and the fastest.
	EngineOp Engine = iota
	// EngineDenote is the literal §3.3 denotational semantics: the
	// approximation chain iterated to stabilisation.
	EngineDenote
	// EngineRuntime executes the process as a goroutine network with true
	// rendezvous and returns the prefix closure of one observed trace — a
	// sampled under-approximation, not the full trace set.
	EngineRuntime
)

func (e Engine) String() string {
	switch e {
	case EngineOp:
		return "op"
	case EngineDenote:
		return "denote"
	case EngineRuntime:
		return "runtime"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine resolves an engine name ("op", "denote", "runtime"; "" means
// EngineOp) — the -engine flag and the wire "engine" field.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "op":
		return EngineOp, nil
	case "denote":
		return EngineDenote, nil
	case "runtime":
		return EngineRuntime, nil
	}
	return 0, fmt.Errorf("csp: unknown engine %q (known: op, denote, runtime)", name)
}

// Model selects the semantic model verdicts are computed under — the
// second axis of every verification request, orthogonal to Engine (which
// picks how trace sets are computed; Model picks what observations count).
// The zero value is ModelTraces, the paper's model, so existing callers
// are unchanged.
type Model = model.Model

const (
	// ModelTraces is the paper's trace model: prefix-closed trace sets,
	// trace refinement, history assertions. Refusals are invisible — STOP
	// satisfies every satisfiable assertion (§4).
	ModelTraces = model.Traces
	// ModelFailures is the §4 stable-failures model: traces plus per-trace
	// acceptance families, so deadlock, internal choice, and refusal
	// assertions become observable.
	ModelFailures = model.Failures
)

// ParseModel resolves a model name ("traces", "failures"; "" means
// ModelTraces) — the -model flag and the wire "model" field.
func ParseModel(name string) (Model, error) { return model.Parse(name) }

// KnownModels lists the selectable models in definition order.
func KnownModels() []Model { return model.Known() }

// DefaultDepth is the trace-length bound used when an options struct
// leaves Depth zero.
const DefaultDepth = 8

// WorkersAuto, set as the Workers field of EngineOptions or CheckOptions
// (the CLI spelling is -workers auto), sizes worker pools to the machine
// (runtime.GOMAXPROCS) with the adaptive serial/parallel cutover engaged:
// each engine stage estimates its size (BFS frontier, equation system,
// obligation batch) and runs inline when the stage is too small to repay
// goroutine spawn, so auto parallelism on a tiny spec costs the same as
// Workers: 1. See DESIGN.md §3.7 for the measured thresholds.
const WorkersAuto = pool.WorkersAuto

// DefaultMaxEvents bounds an EngineRuntime walk when EngineOptions leaves
// MaxEvents zero.
const DefaultMaxEvents = 40

// Options configure loading a module.
type Options struct {
	// NatWidth is the enumeration width of the infinite NAT domain in the
	// finite-branching engines. Zero means the package default.
	NatWidth int
	// Funcs supplies the registered assertion functions; nil means the
	// default registry (which includes the paper's protocol function f).
	Funcs *assertion.Registry
}

// EngineOptions select and tune a trace engine.
type EngineOptions struct {
	// Engine picks the semantics; the zero value is EngineOp.
	Engine Engine
	// Depth is the trace-length bound; zero means DefaultDepth.
	Depth int
	// Workers fans the engine across a worker pool when > 1; WorkersAuto
	// sizes the pool to the machine. The parallel paths return
	// node-identical results to the serial ones, and the adaptive cutover
	// routes stages below the measured threshold inline, so oversizing
	// Workers never slows a small workload.
	Workers int
	// Progress, when non-nil, receives per-stage progress events.
	// Callbacks must be cheap and goroutine-safe.
	Progress Progress
	// Seed drives the non-deterministic choices of EngineRuntime.
	Seed int64
	// MaxEvents bounds an EngineRuntime walk; zero means DefaultMaxEvents.
	MaxEvents int
}

func (o EngineOptions) depth() int {
	if o.Depth > 0 {
		return o.Depth
	}
	return DefaultDepth
}

// CheckOptions tune the model checker and the proof checker.
type CheckOptions struct {
	// Model selects the semantic model verdicts are computed under; the
	// zero value is ModelTraces. Under ModelFailures, Refine/Refines check
	// stable-failures refinement and behavioural asserts (deadlockfree,
	// offers) are discharged against acceptance families instead of
	// holding vacuously.
	Model Model
	// Depth is the trace-length bound of model checks; zero means
	// DefaultDepth.
	Depth int
	// Workers distributes independent obligations (asserts, batch proofs)
	// across a worker pool when > 1; WorkersAuto sizes the pool to the
	// machine with the adaptive cutover engaged.
	Workers int
	// Progress, when non-nil, receives per-obligation progress events.
	Progress Progress
	// Validity bounds the discharge of pure proof obligations; nil means
	// the prover defaults (history length ≤ 3, NAT-sampled domains).
	Validity *assertion.ValidityConfig
}

func (o CheckOptions) depth() int {
	if o.Depth > 0 {
		return o.Depth
	}
	return DefaultDepth
}

// TraceResult is the outcome of Module.Traces: the set plus engine-specific
// measurements.
//
// An engine-computed result carries its live interned set in Set. A result
// rehydrated from the artifact store instead carries a frozen arena view
// (Set nil) and serves every read query straight off the stored image;
// the interned set is rebuilt only if someone asks for it (TraceSet), and
// read paths should go through View, which never triggers that rebuild.
type TraceResult struct {
	// Set is the computed prefix-closed trace set. Nil for store-backed
	// results that have not been thawed — use View (reads) or TraceSet
	// (writes) instead of touching Set directly.
	Set *TraceSet
	// Engine records which engine produced the set.
	Engine Engine
	// Iterations is the approximation-chain pass count (EngineDenote only).
	Iterations int
	// Events is the total communication count of the walk, hidden events
	// included (EngineRuntime only).
	Events int

	// frozen is the arena-backed view for store-rehydrated results;
	// thawed caches the one-time rebuild through the interner.
	frozen closure.View
	thawed atomic.Pointer[TraceSet]
}

// TraceView is the read-only query surface shared by live interned sets
// and frozen arena-backed views: size, depth, membership, and listings.
// Both implementations answer every query byte-identically.
type TraceView = closure.View

// View returns the result's read surface: the live set when the engine
// computed one (or a thaw already happened), otherwise the frozen view —
// zero rebuild, zero interning, queries answered off the arena image.
func (r *TraceResult) View() TraceView {
	if r.Set != nil {
		return r.Set
	}
	if s := r.thawed.Load(); s != nil {
		return s
	}
	frozen.CountHit()
	return r.frozen
}

// TraceSet returns the canonical interned set, thawing a frozen-backed
// result on first call (rebuilding bottom-up through the interner, so the
// returned set is pointer-canonical with a freshly computed one). This is
// the write-side escape hatch: persisting, or building new sets on top.
func (r *TraceResult) TraceSet() *TraceSet {
	if r.Set != nil {
		return r.Set
	}
	if s := r.thawed.Load(); s != nil {
		return s
	}
	r.thawed.CompareAndSwap(nil, r.frozen.Thaw())
	return r.thawed.Load()
}

// Module is a loaded .csp module plus everything needed to analyse it.
//
// A Module parses its source lazily: Load parses eagerly (so parse errors
// surface at load time, as always), but a Module rehydrated from the
// artifact store (internal/store) defers the parse until an engine
// actually needs the AST. A store hit whose precomputed results cover the
// request — consulted via CachedTraces / CachedCheck / CachedProve —
// therefore answers without parsing or denoting anything.
type Module struct {
	// src and opts are retained for the lazy parse and for persisting the
	// module as a store artifact. Modules built via FromModule/FromSystem
	// have no source and are not persistable.
	src  string
	opts Options

	parse  sync.Once
	sys    *core.System
	sysErr error

	// res caches computed results per (engine, depth/bound, process) so
	// resident hosts can serve repeats — and store warm boots — without
	// recomputing; see results.go.
	res resultsCache

	// createdUnix is the artifact creation time carried across persist
	// cycles (zero for modules never stored).
	createdUnix int64
}

// system returns the parsed core.System, parsing on first need. For
// deferred modules the source already parsed successfully when it was
// stored, so an error here means the grammar drifted since the artifact
// was written; engine methods propagate it like any load failure.
func (m *Module) system() (*core.System, error) {
	m.parse.Do(func() {
		if m.sys == nil {
			m.sys, m.sysErr = core.Load(m.src, core.Options{NatWidth: m.opts.NatWidth, Funcs: m.opts.Funcs})
		}
	})
	return m.sys, m.sysErr
}

// Load parses a .csp source text. Parse failures wrap ErrParse.
func Load(ctx context.Context, src string, opts Options) (*Module, error) {
	if err := pool.Canceled(ctx); err != nil {
		return nil, err
	}
	m := &Module{src: src, opts: opts}
	if _, err := m.system(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadFile reads and parses a .csp file.
func LoadFile(ctx context.Context, path string, opts Options) (*Module, error) {
	if err := pool.Canceled(ctx); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Load(ctx, string(data), opts)
	if err != nil {
		return nil, fmt.Errorf("%s:%w", path, err)
	}
	return m, nil
}

// newDeferred returns a Module that parses src on first engine use. Only
// the artifact-store path constructs these; everything else parses eagerly.
func newDeferred(src string, opts Options) *Module {
	return &Module{src: src, opts: opts}
}

// FromModule wraps an already-constructed syntax module (e.g. the paper
// systems built by internal/paper).
func FromModule(m *syntax.Module, opts Options) *Module {
	return &Module{opts: opts, sys: core.FromModule(m, core.Options{NatWidth: opts.NatWidth, Funcs: opts.Funcs})}
}

// FromSystem wraps an existing core.System.
func FromSystem(sys *core.System) *Module { return &Module{sys: sys} }

// Source returns the module's source text; empty for modules built via
// FromModule/FromSystem.
func (m *Module) Source() string { return m.src }

// System exposes the underlying core.System for callers that need engine
// plumbing the facade does not cover, forcing the parse if deferred.
func (m *Module) System() *core.System { sys, _ := m.system(); return sys }

// Syntax returns the parsed module (definitions, sets, constants).
func (m *Module) Syntax() *syntax.Module { return m.System().Module }

// Env returns the module's evaluation environment.
func (m *Module) Env() sem.Env {
	sys, err := m.system()
	if err != nil {
		return sem.Env{}
	}
	return sys.Env()
}

// Funcs returns the module's assertion-function registry.
func (m *Module) Funcs() *assertion.Registry {
	sys, err := m.system()
	if err != nil {
		return nil
	}
	return sys.Funcs()
}

// Asserts returns the module's assert declarations in source order.
func (m *Module) Asserts() []AssertDecl {
	sys, err := m.system()
	if err != nil {
		return nil
	}
	return sys.Asserts
}

// Proc resolves a defined process by name.
func (m *Module) Proc(name string) (Proc, error) {
	sys, err := m.system()
	if err != nil {
		return nil, err
	}
	return sys.Proc(name)
}

// ProcIdx resolves an element of a process array.
func (m *Module) ProcIdx(name string, idx int64) (Proc, error) {
	sys, err := m.system()
	if err != nil {
		return nil, err
	}
	return sys.ProcIdx(name, idx)
}

// Traces computes the visible traces of p under the selected engine. For
// EngineOp and EngineDenote the set is exact to opts.Depth over the sampled
// domains; for EngineRuntime it is the prefix closure of one random walk.
func (m *Module) Traces(ctx context.Context, p Proc, opts EngineOptions) (*TraceResult, error) {
	depth := opts.depth()
	switch opts.Engine {
	case EngineOp:
		x := op.NewExplorer()
		x.Workers = opts.Workers
		x.Progress = opts.Progress
		set, err := x.TracesContext(ctx, op.NewState(p, m.Env()), depth)
		if err != nil {
			return nil, err
		}
		return &TraceResult{Set: set, Engine: EngineOp}, nil
	case EngineDenote:
		d := sem.NewDenoter(depth)
		d.Workers = opts.Workers
		d.Progress = opts.Progress
		set, err := d.DenoteContext(ctx, p, m.Env())
		if err != nil {
			return nil, err
		}
		return &TraceResult{Set: set, Engine: EngineDenote, Iterations: d.Iterations()}, nil
	case EngineRuntime:
		res, err := m.Run(ctx, p, opts)
		if err != nil {
			return nil, err
		}
		set := closure.Stop()
		for i := len(res.Trace) - 1; i >= 0; i-- {
			set = closure.Prefix(res.Trace[i], set)
		}
		return &TraceResult{Set: set, Engine: EngineRuntime, Events: len(res.Events)}, nil
	}
	return nil, fmt.Errorf("csp: unknown engine %v", opts.Engine)
}

// Run executes p as a goroutine network with true CSP rendezvous, feeding
// every communication to the monitors in order. The runtime itself is not
// preemptible mid-rendezvous; ctx is checked before the run starts.
func (m *Module) Run(ctx context.Context, p Proc, opts EngineOptions, monitors ...Monitor) (*RunResult, error) {
	if err := pool.Canceled(ctx); err != nil {
		return nil, err
	}
	maxEvents := opts.MaxEvents
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	var monitor Monitor
	switch len(monitors) {
	case 0:
	case 1:
		monitor = monitors[0]
	default:
		monitor = func(rec EventRecord, hist trace.History) error {
			for _, mo := range monitors {
				if err := mo(rec, hist); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return runtime.Run(p, runtime.Config{
		Env:       m.Env(),
		Seed:      opts.Seed,
		MaxEvents: maxEvents,
		Monitor:   monitor,
	})
}

// MonitorSat builds a Monitor evaluating assertion a after every visible
// event of a run, for attaching to Module.Run.
func (m *Module) MonitorSat(a Assertion) Monitor {
	return runtime.MonitorSat(a, m.Env(), m.Funcs())
}

// DotLTS renders the bounded labelled transition system of p as a Graphviz
// digraph.
func (m *Module) DotLTS(p Proc, depth int) (string, error) {
	return op.DotLTS(op.NewState(p, m.Env()), depth)
}

// Checker returns a model checker bound to ctx with the options' model,
// depth, and exploration worker count.
func (m *Module) Checker(ctx context.Context, opts CheckOptions) *check.Checker {
	return m.System().CheckerModel(ctx, opts.Model, opts.depth(), opts.Workers)
}

// Sat model-checks "p sat a" to the options' depth under the options'
// model. Behavioural assertions (deadlockfree, offers) hold vacuously
// under ModelTraces and are discharged against acceptance families under
// ModelFailures.
func (m *Module) Sat(ctx context.Context, p Proc, a Assertion, opts CheckOptions) (CheckResult, error) {
	return m.Checker(ctx, opts).Sat(p, a)
}

// Refines checks refinement impl ⊑ spec to the options' depth under the
// options' model: trace refinement by default, stable-failures refinement
// under ModelFailures.
func (m *Module) Refines(ctx context.Context, impl, spec Proc, opts CheckOptions) (RefineResult, error) {
	return m.Checker(ctx, opts).Refines(impl, spec)
}

// Refinement is the verdict of Module.Refine. A completed check always
// returns a verdict with a nil error — "does not refine" is an answer,
// not a fault; use Err for an error-shaped view wrapping
// ErrRefinementFailed.
type Refinement struct {
	RefineResult
}

// Err returns nil when the refinement holds, and otherwise an error
// wrapping ErrRefinementFailed that renders the counterexample — the
// bridge from verdict-shaped results to errors.Is dispatch (CLI exit
// codes, batch pipelines).
func (r *Refinement) Err() error {
	if r == nil || r.OK {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrRefinementFailed, r.RefineResult)
}

// Refine checks refinement impl ⊑ spec under the options' model and
// returns the verdict: trace inclusion under ModelTraces, stable-failures
// refinement under ModelFailures (where a violation carries the
// counterexample failure (s, X) — the trace s and the acceptance
// complementing the refused set X). The error is non-nil only when the
// check itself could not complete (parse failure, cancellation, budget).
func (m *Module) Refine(ctx context.Context, impl, spec Proc, opts CheckOptions) (*Refinement, error) {
	rr, err := m.Refines(ctx, impl, spec, opts)
	if err != nil {
		return nil, err
	}
	return &Refinement{RefineResult: rr}, nil
}

// Deadlocks searches p for reachable stuck configurations to the options'
// depth.
func (m *Module) Deadlocks(ctx context.Context, p Proc, opts CheckOptions) ([]Deadlock, error) {
	if err := pool.Canceled(ctx); err != nil {
		return nil, err
	}
	return m.Checker(ctx, opts).Deadlocks(p)
}

// CheckAll model-checks every assert declaration of the module under the
// options' model, distributing them across opts.Workers goroutines. A
// declaration that pins its own model ("assert P refines Q in failures")
// overrides opts.Model for that declaration.
func (m *Module) CheckAll(ctx context.Context, opts CheckOptions) ([]AssertResult, error) {
	sys, err := m.system()
	if err != nil {
		return nil, err
	}
	return sys.CheckAllModel(ctx, opts.Model, opts.depth(), opts.Workers, opts.Progress)
}

// Prover returns a proof checker bound to ctx under the options' validity
// configuration.
func (m *Module) Prover(ctx context.Context, opts CheckOptions) *proof.Checker {
	c := m.System().Prover(opts.Validity)
	c.Ctx = ctx
	return c
}

// Check verifies one proof object and returns its conclusion. Failed pure
// side conditions wrap ErrObligationFailed; cancellation wraps ErrCanceled.
func (m *Module) Check(ctx context.Context, p Proof, opts CheckOptions) (Claim, error) {
	return m.Prover(ctx, opts).Check(p)
}

// CheckBatch verifies many independent proofs across opts.Workers
// goroutines; see proof.CheckBatch for the result contract.
func (m *Module) CheckBatch(ctx context.Context, obs []Obligation, opts CheckOptions) ([]BatchResult, error) {
	return proof.CheckBatch(ctx, m.Prover(nil, opts), obs, opts.Workers, opts.Progress)
}

// Failures computes the §4 stable-failures model of p to the options'
// depth.
func (m *Module) Failures(ctx context.Context, p Proc, opts EngineOptions) (*FailuresModel, error) {
	if err := pool.Canceled(ctx); err != nil {
		return nil, err
	}
	return failures.ComputeContext(ctx, p, m.Env(), opts.depth())
}

// Diverges reports whether p can engage in unbounded hidden chatter within
// the options' depth, with the visible trace after which it can.
func (m *Module) Diverges(ctx context.Context, p Proc, opts EngineOptions) (Trace, bool, error) {
	if err := pool.Canceled(ctx); err != nil {
		return nil, false, err
	}
	return failures.Diverges(p, m.Env(), opts.depth())
}

// FailuresRefines checks failures refinement impl ⊑F spec; nil means it
// holds, otherwise the counterexample distinguishes them.
func FailuresRefines(impl, spec *FailuresModel) (*FailuresCounterexample, error) {
	return failures.Refines(impl, spec)
}

// FailuresEquivalent checks failures equivalence; nil means equivalent.
func FailuresEquivalent(a, b *FailuresModel) (*FailuresCounterexample, error) {
	return failures.Equivalent(a, b)
}

// FormatAssertResults renders CheckAll results as an aligned report.
func FormatAssertResults(results []AssertResult) string {
	return core.FormatAssertResults(results)
}

// Stats aggregates the intern and operator-memo counters across every
// shard of the closure layer.
func Stats() CacheStats { return closure.Stats() }

// ResetCaches clears the shared intern and memo tables — between benchmark
// iterations, or to bound memory in a long session.
func ResetCaches() { closure.ResetCaches() }
