package csp

// White-box singleflight tests. The black-box concurrency test in
// cache_test.go cannot force waiters to arrive while a load is in
// progress (a fast parse wins the race and they see a finished cache
// entry instead), so here we open a flight by hand, park real Load calls
// on it, and only then complete it — making the coalescing path, its
// counters, and the waiter-retries-on-leader-error contract deterministic.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// parkWaiters starts n Loads of src and blocks until all of them have
// coalesced onto the open flight for its key.
func parkWaiters(t *testing.T, c *ModuleCache, src string, opts Options, n int) (*sync.WaitGroup, []*Module, []bool, []error) {
	t.Helper()
	var wg sync.WaitGroup
	mods := make([]*Module, n)
	hits := make([]bool, n)
	errs := make([]error, n)
	base := coalescedNow(c)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mods[i], _, hits[i], errs[i] = c.Load(context.Background(), src, opts)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for coalescedNow(c) < base+uint64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters parked on the flight", coalescedNow(c)-base, n)
		}
		time.Sleep(time.Millisecond)
	}
	return &wg, mods, hits, errs
}

func coalescedNow(c *ModuleCache) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// TestSingleflightWaitersPark opens a flight, parks waiters, completes the
// flight with a successful load, and checks every waiter got the leader's
// module as a hit with the coalesced counter at exactly n.
func TestSingleflightWaitersPark(t *testing.T) {
	const n = 6
	c := NewModuleCache(4)
	opts := Options{NatWidth: 2}
	src := "p = a!0 -> p\n"
	key := SourceHash(src, opts)

	f := &flight{done: make(chan struct{})}
	c.mu.Lock()
	c.inflight[key] = f
	c.mu.Unlock()

	wg, mods, hits, errs := parkWaiters(t, c, src, opts, n)

	m, err := Load(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	f.mod = m
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if mods[i] != m {
			t.Fatalf("waiter %d got a different module than the leader produced", i)
		}
		if !hits[i] {
			t.Fatalf("waiter %d reported a miss for a coalesced load", i)
		}
	}
	if st := c.Stats(); st.Coalesced != n || st.Hits != n || st.Misses != 0 {
		t.Fatalf("counters after coalesced success: %+v", st)
	}
}

// TestSingleflightLeaderErrorRetries completes the flight with an error and
// checks the waiters do NOT inherit it: each retries from the top, one
// becomes the new leader, and all end up with the module.
func TestSingleflightLeaderErrorRetries(t *testing.T) {
	const n = 4
	c := NewModuleCache(4)
	opts := Options{NatWidth: 2}
	src := "p = b!1 -> p\n"
	key := SourceHash(src, opts)

	f := &flight{done: make(chan struct{})}
	c.mu.Lock()
	c.inflight[key] = f
	c.mu.Unlock()

	wg, mods, _, errs := parkWaiters(t, c, src, opts, n)

	f.err = errors.New("leader's private cancellation")
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d inherited the leader's error: %v", i, errs[i])
		}
		if mods[i] == nil || mods[i] != mods[0] {
			t.Fatalf("waiter %d did not converge on the retried module", i)
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d after retry, want exactly one new leader", st.Misses)
	}
}

// TestSingleflightWaiterContext checks a parked waiter honours its own
// context: it gives up with a cancellation error while other waiters keep
// waiting, and the eventual completion still serves them.
func TestSingleflightWaiterContext(t *testing.T) {
	c := NewModuleCache(4)
	opts := Options{NatWidth: 2}
	src := "p = c!0 -> p\n"
	key := SourceHash(src, opts)

	f := &flight{done: make(chan struct{})}
	c.mu.Lock()
	c.inflight[key] = f
	c.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, _, err := c.Load(ctx, src, opts)
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for coalescedNow(c) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled waiter returned no error")
	}

	m, err := Load(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	f.mod = m
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	c.add(key, m) // what the real leader does after closing its flight

	got, _, hit, err := c.Load(context.Background(), src, opts)
	if err != nil || got == nil || !hit {
		t.Fatalf("load after completed flight: mod=%v hit=%v err=%v", got, hit, err)
	}
}
