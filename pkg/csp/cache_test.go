package csp_test

import (
	"context"
	"sync"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/pkg/csp"
)

// TestModuleCacheBasics exercises hit/miss accounting and LRU eviction.
func TestModuleCacheBasics(t *testing.T) {
	c := csp.NewModuleCache(2)
	ctx := context.Background()
	opts := csp.Options{NatWidth: 2}
	specs := []string{
		"p0 = a!0 -> p0\n",
		"p1 = a!1 -> p1\n",
		"p2 = a!0 -> a!1 -> p2\n",
	}

	m, key, hit, err := c.Load(ctx, specs[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit || key != csp.SourceHash(specs[0], opts) {
		t.Fatalf("first load: hit=%v key=%q", hit, key)
	}
	m2, _, hit, err := c.Load(ctx, specs[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || m2 != m {
		t.Fatalf("second load: hit=%v, same module=%v", hit, m2 == m)
	}

	// Touch two more keys; capacity 2 must evict the least recently used.
	for _, s := range specs[1:] {
		if _, _, _, err := c.Load(ctx, s, opts); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Size != 2 || st.Evicted != 1 || st.Misses != 3 || st.Hits != 1 {
		t.Fatalf("stats after churn: %+v", st)
	}
}

// TestModuleCacheSingleflight issues N concurrent first loads of the same
// source: exactly one may parse (one miss), the rest must coalesce onto the
// leader's flight and come back with the very same *Module as cache hits.
func TestModuleCacheSingleflight(t *testing.T) {
	const n = 16
	c := csp.NewModuleCache(8)
	opts := csp.Options{NatWidth: 2}
	src := "p = tick!0 -> p\nassert p sat tick <= tick\n"

	start := make(chan struct{})
	mods := make([]*csp.Module, n)
	hits := make([]bool, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			mods[i], _, hits[i], errs[i] = c.Load(context.Background(), src, opts)
		}(i)
	}
	close(start)
	wg.Wait()

	hitCount := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("load %d: %v", i, errs[i])
		}
		if mods[i] != mods[0] {
			t.Fatalf("load %d returned a different *Module than load 0", i)
		}
		if hits[i] {
			hitCount++
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (only the leader parses)", st.Misses)
	}
	if hitCount != n-1 {
		t.Fatalf("%d of %d loads reported hit, want %d (everyone but the leader)", hitCount, n, n-1)
	}
	// How many of the n-1 hits coalesced onto the open flight versus found
	// the finished cache entry depends on scheduling; the deterministic
	// coalescing assertions live in TestSingleflightWaitersPark.
	if st.Coalesced > n-1 {
		t.Fatalf("coalesced = %d, more than the %d non-leaders", st.Coalesced, n-1)
	}
}

// TestModuleCacheSingleflightError checks that a failing leader does not
// poison waiters: each retries from the top, so a bad source yields a parse
// error to every caller and a subsequently fixed source loads fresh.
func TestModuleCacheSingleflightError(t *testing.T) {
	const n = 8
	c := csp.NewModuleCache(8)
	opts := csp.Options{NatWidth: 2}
	bad := "p = ->\n"

	start := make(chan struct{})
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, _, _, errs[i] = c.Load(context.Background(), bad, opts)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("load %d of a bad source succeeded", i)
		}
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("failed loads were cached: %+v", st)
	}
}

// TestModuleCacheFuncsBypass checks loads with a Funcs registry skip the
// cache entirely (their meaning cannot be keyed by source text alone).
func TestModuleCacheFuncsBypass(t *testing.T) {
	c := csp.NewModuleCache(8)
	opts := csp.Options{NatWidth: 2, Funcs: assertion.NewRegistry()}
	src := "p = a!0 -> p\n"
	for i := 0; i < 2; i++ {
		_, key, hit, err := c.Load(context.Background(), src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if hit || key != "" {
			t.Fatalf("load %d with Funcs: hit=%v key=%q, want bypass", i, hit, key)
		}
	}
	if st := c.Stats(); st.Size != 0 || st.Misses != 0 {
		t.Fatalf("Funcs loads touched the cache: %+v", st)
	}
}
