// Automatic proving of a module's assert clauses — the engine behind
// cmd/cspprove and the server's /v1/prove endpoint. The strategy mirrors
// the shape of the paper's own development:
//
//  1. Asserts about (possibly arrayed) recursive definitions become goals
//     for the recursion rule, attempted jointly first (mutual recursion,
//     as in Table 1 where sender's claim needs q's); goals whose synthesis
//     fails are dropped from the joint attempt and retried individually —
//     the retries are verified as one batch across the Workers pool.
//  2. Asserts about network definitions (parallel compositions, possibly
//     hidden and named) are assembled from the proofs of phase 1 with the
//     parallelism/consequence/chan/unfold glue — the §2.2(3) six-step
//     shape.
//
// Pure side conditions are discharged by bounded validity; every accepted
// proof is fully re-verified by the rule checker.
package csp

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"cspsat/internal/assertion"
	"cspsat/internal/auto"
	"cspsat/internal/parser"
	"cspsat/internal/pool"
	"cspsat/internal/proof"
	"cspsat/internal/syntax"
)

// ProveResult reports the automatic prover's outcome for one provable
// assert clause, in the order the driver attempted them (recursion goals
// in declaration order, then network asserts in declaration order).
// Refinement asserts and asserts about undefined or non-reference
// processes are not provable by this driver and yield no result.
type ProveResult struct {
	// Decl is the assert clause as written in the source.
	Decl string
	// Name is the defined process the claim is about.
	Name string
	// A is the claim proved or attempted (quantified array asserts are
	// normalised onto the definition's parameter first).
	A Assertion
	// Method records how the proof was found: "recursion" (individual
	// application), "recursion (joint)" (established by a mutual-recursion
	// application shared with other goals), or "network glue".
	Method string
	// OK is true when a fully checked proof was found.
	OK bool
	// Err is the synthesis or checking failure when OK is false. The
	// assert may still hold — use model checking for refutation.
	Err error
	// Proof is the verified proof object when OK is true, for rendering.
	Proof Proof
}

// ProveAsserts synthesises and checks §2.1-style proofs for the module's
// assert clauses using the automatic prover. log, when non-nil, receives
// one line per verified rule application. The returned error is non-nil
// only when ctx was canceled; individual unprovable asserts are reported
// per-result, and results produced before the cancellation are returned
// alongside the error.
func (m *Module) ProveAsserts(ctx context.Context, opts CheckOptions, log func(string)) ([]ProveResult, error) {
	prover := m.Prover(ctx, opts)
	if log != nil {
		prover.Log = log
	}
	d := &proveDriver{
		mod:    m,
		ctx:    ctx,
		opts:   opts,
		prover: prover,
		proved: map[string][]provedEntry{},
		joint:  map[string]bool{},
	}
	return d.run()
}

// proveDriver carries the state of one ProveAsserts invocation.
type proveDriver struct {
	mod    *Module
	ctx    context.Context
	opts   CheckOptions
	prover *proof.Checker
	// proved collects every established claim (with its proof) per
	// definition; phase 2's network glue picks the combination that makes
	// the final weakening go through.
	proved map[string][]provedEntry
	// joint marks name+assert keys established by the joint recursion
	// attempt, so their results can say so.
	joint map[string]bool
}

type provedEntry struct {
	a  assertion.A
	pr proof.Proof
}

// goalEntry pairs a recursion goal with the assert it came from and its
// output slot in the results.
type goalEntry struct {
	goal auto.Goal
	decl string
	line int
}

func (d *proveDriver) run() ([]ProveResult, error) {
	recGoals, netDecls := d.classify()
	results := make([]ProveResult, 0, len(recGoals)+len(netDecls))

	// Phase 1: joint recursion, shedding unsynthesisable goals.
	pending := make([]auto.Goal, 0, len(recGoals))
	seenName := map[string]bool{}
	for _, e := range recGoals {
		// Conflicting claims about the same definition cannot share one
		// recursion application; keep the first for the joint attempt.
		if !seenName[e.goal.Name] {
			seenName[e.goal.Name] = true
			pending = append(pending, e.goal)
		}
	}
	for len(pending) > 0 {
		if err := pool.Canceled(d.ctx); err != nil {
			return results, err
		}
		pr, err := auto.Recursive(d.mod.Env(), pending)
		if err != nil {
			var ge *auto.GoalError
			if errors.As(err, &ge) {
				pending = dropGoal(pending, ge.Name)
				continue
			}
			break
		}
		if _, err := d.prover.Check(pr); err != nil {
			// The joint candidate failed checking; fall back to
			// individual attempts for everything.
			break
		}
		for i, g := range pending {
			d.markProved(g, pending, i)
		}
		break
	}

	recResults, err := d.proveRemaining(recGoals)
	results = append(results, recResults...)
	if err != nil {
		return results, err
	}

	// Phase 2: network asserts glued from phase 1's component proofs,
	// trying every combination of established component claims.
	for _, decl := range netDecls {
		if err := pool.Canceled(d.ctx); err != nil {
			return results, err
		}
		ref := decl.Proc.(syntax.Ref)
		res := ProveResult{Decl: decl.String(), Name: ref.Name, A: decl.A, Method: "network glue"}
		pr, err := d.proveNetwork(ref.Name, decl.A)
		if err != nil {
			res.Err = err
		} else {
			res.OK = true
			res.Proof = pr
		}
		results = append(results, res)
	}
	return results, nil
}

// proveRemaining covers every recursion goal the joint attempt left
// unproved: each is synthesised individually, then the synthesised
// candidates are verified as one batch across the worker pool. Results
// keep goal order regardless of batch completion order.
func (d *proveDriver) proveRemaining(recGoals []goalEntry) ([]ProveResult, error) {
	results := make([]ProveResult, len(recGoals))
	var obs []Obligation
	var obsGoal []goalEntry // parallel to obs: the goal each obligation proves
	for i, e := range recGoals {
		results[i] = ProveResult{Decl: e.decl, Name: e.goal.Name, A: e.goal.A, Method: "recursion"}
		if entry, ok := d.findProved(e.goal.Name, e.goal.A); ok {
			results[i].OK = true
			results[i].Proof = entry.pr
			if d.joint[provedKey(e.goal.Name, e.goal.A)] {
				results[i].Method = "recursion (joint)"
			}
			continue
		}
		pr, err := auto.Recursive(d.mod.Env(), []auto.Goal{e.goal})
		if err != nil {
			results[i].Err = err
			continue
		}
		obs = append(obs, Obligation{Name: e.decl, Proof: pr})
		obsGoal = append(obsGoal, goalEntry{goal: e.goal, decl: e.decl, line: i})
	}
	if len(obs) > 0 {
		// A cancellation error surfaces as Err on the unprocessed entries.
		batch, err := d.mod.CheckBatch(d.ctx, obs, d.opts)
		for bi, r := range batch {
			e := obsGoal[bi]
			if r.Err != nil {
				results[e.line].Err = r.Err
				continue
			}
			d.addProved(e.goal.Name, e.goal.A, obs[bi].Proof)
			results[e.line].OK = true
			results[e.line].Proof = obs[bi].Proof
		}
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// proveNetwork tries the network glue with each combination of proved
// component claims (the combination count is the product of per-name claim
// counts, small in practice), returning the first fully checked proof.
func (d *proveDriver) proveNetwork(name string, final assertion.A) (proof.Proof, error) {
	names := make([]string, 0, len(d.proved))
	for n := range d.proved {
		names = append(names, n)
	}
	sort.Strings(names)
	idx := make([]int, len(names))
	var lastErr error
	for {
		comps := map[string]proof.Proof{}
		claims := map[string]assertion.A{}
		for i, n := range names {
			e := d.proved[n][idx[i]]
			comps[n] = e.pr
			claims[n] = e.a
		}
		pr, err := auto.Network(d.mod.Env(), name, comps, claims, final)
		if err == nil {
			if _, err = d.prover.Check(pr); err == nil {
				return pr, nil
			}
		}
		lastErr = err
		i := 0
		for ; i < len(names); i++ {
			idx[i]++
			if idx[i] < len(d.proved[names[i]]) {
				break
			}
			idx[i] = 0
		}
		if i == len(names) {
			if lastErr == nil {
				lastErr = fmt.Errorf("no proved component claims available")
			}
			return nil, lastErr
		}
	}
}

func provedKey(name string, a assertion.A) string {
	return name + " sat " + fmt.Sprint(a)
}

func (d *proveDriver) findProved(name string, a assertion.A) (provedEntry, bool) {
	want := fmt.Sprint(a)
	for _, e := range d.proved[name] {
		if fmt.Sprint(e.a) == want {
			return e, true
		}
	}
	return provedEntry{}, false
}

func (d *proveDriver) addProved(name string, a assertion.A, pr proof.Proof) {
	if _, ok := d.findProved(name, a); ok {
		return
	}
	d.proved[name] = append(d.proved[name], provedEntry{a: a, pr: pr})
}

// markProved records a joint-recursion goal's proof for reuse by the
// network glue: the same joint proof is regenerated with this goal's
// definition leading, so its claim is the conclusion (the recursion rule
// establishes all participating claims; Main selects which one the proof
// object reports).
func (d *proveDriver) markProved(g auto.Goal, joint []auto.Goal, idx int) {
	if _, ok := d.findProved(g.Name, g.A); ok {
		return
	}
	rotated := make([]auto.Goal, 0, len(joint))
	rotated = append(rotated, joint[idx])
	rotated = append(rotated, joint[:idx]...)
	rotated = append(rotated, joint[idx+1:]...)
	if pr, err := auto.Recursive(d.mod.Env(), rotated); err == nil {
		d.addProved(g.Name, g.A, pr)
		d.joint[provedKey(g.Name, g.A)] = true
	}
}

// classify splits asserts into recursion goals and network-shaped asserts.
func (d *proveDriver) classify() (goals []goalEntry, netDecls []parser.AssertDecl) {
	for _, decl := range d.mod.Asserts() {
		if decl.A == nil {
			continue // refinement asserts are the model checker's business
		}
		ref, ok := decl.Proc.(syntax.Ref)
		if !ok {
			continue
		}
		def, found := d.mod.Syntax().Lookup(ref.Name)
		if !found {
			continue
		}
		if len(decl.Quants) == 0 && ref.Sub == nil {
			if isNetworkDef(def.Body) {
				netDecls = append(netDecls, decl)
				continue
			}
			goals = append(goals, goalEntry{goal: auto.Goal{Name: ref.Name, A: decl.A}, decl: decl.String()})
			continue
		}
		if len(decl.Quants) == 1 && ref.Sub != nil && def.IsArray() {
			v, isVar := ref.Sub.(syntax.Var)
			if !isVar || v.Name != decl.Quants[0].Var {
				continue
			}
			a := decl.A
			if v.Name != def.Param {
				a = assertion.SubstVar(a, v.Name, assertion.Var(def.Param))
			}
			goals = append(goals, goalEntry{goal: auto.Goal{Name: ref.Name, A: a}, decl: decl.String()})
		}
	}
	return goals, netDecls
}

// isNetworkDef reports whether a definition's body is a composition shape
// (parallel or hiding, possibly through references) rather than a
// communicating process.
func isNetworkDef(p syntax.Proc) bool {
	switch p.(type) {
	case syntax.Par, syntax.Hiding:
		return true
	default:
		return false
	}
}

func dropGoal(gs []auto.Goal, name string) []auto.Goal {
	out := gs[:0]
	for _, g := range gs {
		if g.Name != name {
			out = append(out, g)
		}
	}
	return out
}
