package csp

import (
	"encoding/binary"
	"hash/crc64"
)

// RestampArtifactVersionForTest rewrites an encoded artifact's version
// field and re-stamps the checksum, producing a well-formed file from a
// "different codec version" for skew tests.
func RestampArtifactVersionForTest(data []byte, version uint32) []byte {
	const magicLen = len("CSPSTORE")
	mut := make([]byte, len(data))
	copy(mut, data)
	binary.LittleEndian.PutUint32(mut[magicLen:], version)
	sum := crc64.Checksum(mut[:len(mut)-8], crc64.MakeTable(crc64.ECMA))
	binary.LittleEndian.PutUint64(mut[len(mut)-8:], sum)
	return mut
}
