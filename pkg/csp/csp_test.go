package csp_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cspsat/pkg/csp"
)

const spec = `
copier = input?x:NAT -> wire!x -> copier
recopier = wire?y:NAT -> output!y -> recopier
net = copier || recopier
sys = chan wire; net
assert copier sat wire <= input
`

func load(t *testing.T) *csp.Module {
	t.Helper()
	mod, err := csp.Load(context.Background(), spec, csp.Options{NatWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestLoadErrParse(t *testing.T) {
	_, err := csp.Load(context.Background(), "copier = ->", csp.Options{})
	if err == nil {
		t.Fatal("want parse error")
	}
	if !errors.Is(err, csp.ErrParse) {
		t.Fatalf("error does not wrap csp.ErrParse: %v", err)
	}
}

func TestLoadCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := csp.Load(ctx, spec, csp.Options{}); !errors.Is(err, csp.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestEngineString(t *testing.T) {
	for e, want := range map[csp.Engine]string{
		csp.EngineOp:      "op",
		csp.EngineDenote:  "denote",
		csp.EngineRuntime: "runtime",
	} {
		if got := e.String(); got != want {
			t.Errorf("Engine(%d).String() = %q, want %q", int(e), got, want)
		}
	}
}

// TestEnginesAgree pins the two exhaustive engines to each other through
// the facade, and checks the runtime engine's sampled walk is a prefix-
// closed under-approximation of the exhaustive trace set.
func TestEnginesAgree(t *testing.T) {
	mod := load(t)
	p, err := mod.Proc("sys")
	if err != nil {
		t.Fatal(err)
	}
	opRes, err := mod.Traces(context.Background(), p, csp.EngineOptions{Engine: csp.EngineOp, Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	denRes, err := mod.Traces(context.Background(), p, csp.EngineOptions{Engine: csp.EngineDenote, Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !opRes.Set.Same(denRes.Set) {
		t.Fatal("op and denote engines disagree through the facade")
	}
	if denRes.Iterations < 1 {
		t.Fatalf("denote engine reported %d iterations", denRes.Iterations)
	}
	runRes, err := mod.Traces(context.Background(), p, csp.EngineOptions{Engine: csp.EngineRuntime, Seed: 1, MaxEvents: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !runRes.Set.SubsetOf(opRes.Set) {
		t.Fatal("runtime engine observed a trace the op engine says is impossible")
	}
}

func TestTracesCanceled(t *testing.T) {
	mod := load(t)
	p, err := mod.Proc("sys")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range []csp.Engine{csp.EngineOp, csp.EngineDenote, csp.EngineRuntime} {
		if _, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: e, Depth: 6}); !errors.Is(err, csp.ErrCanceled) {
			t.Errorf("engine %v: want ErrCanceled, got %v", e, err)
		}
	}
}

func TestCheckAllAndSat(t *testing.T) {
	mod := load(t)
	results, err := mod.CheckAll(context.Background(), csp.CheckOptions{Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("want 1 assert result, got %d", len(results))
	}
	if !results[0].OK() {
		t.Fatalf("assert failed: %v", results[0])
	}
	out := csp.FormatAssertResults(results)
	if !strings.Contains(out, "OK") {
		t.Fatalf("FormatAssertResults missing OK line:\n%s", out)
	}
}

func TestStatsAfterReset(t *testing.T) {
	csp.ResetCaches()
	mod := load(t)
	p, err := mod.Proc("sys")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mod.Traces(context.Background(), p, csp.EngineOptions{Depth: 5}); err != nil {
		t.Fatal(err)
	}
	s := csp.Stats()
	if s.InternedNodes == 0 {
		t.Fatal("Stats reports no interned nodes after an exploration")
	}
}
