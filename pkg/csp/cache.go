// Module caching for resident hosts. A long-running verification service
// sees the same specs over and over; parsing is cheap, but a fresh Module
// re-derives every canonical trie from scratch, while a cached Module's
// engines hit the memo tables warmed by earlier requests on the very same
// *closure.Set pointers. The cache key is a hash of the source text and
// the load options, so "the same spec" means byte-identical source, not
// filename identity.
package csp

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"cspsat/internal/pool"
	"cspsat/internal/store"
)

// ModuleCache is a bounded LRU of loaded Modules keyed by source hash,
// optionally backed by an on-disk artifact store (SetStore) as a second
// tier: memory LRU → disk store → compile, with the singleflight covering
// both tiers (one leader per key probes the disk and, failing that,
// parses; everyone else waits on its result). Modules are immutable once
// loaded (their engines share the global intern shards), so one cached
// Module may serve many concurrent requests. The zero value is not usable;
// construct with NewModuleCache.
type ModuleCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used; values are *cacheEntry
	entries   map[string]*list.Element
	inflight  map[string]*flight
	hits      uint64
	misses    uint64
	evicted   uint64
	coalesced uint64

	// L2 tier. st and logf are set once by SetStore before the cache is
	// shared; the counters are guarded by mu. persistMu serializes artifact
	// writes so concurrent result notifications for one module cannot
	// interleave encodes.
	st                *store.Store
	logf              func(format string, args ...any)
	persistMu         sync.Mutex
	storeHits         uint64
	storeMisses       uint64
	storeCorrupt      uint64
	storePuts         uint64
	storeMapped       uint64
	storeBytesRead    uint64
	storeBytesWritten uint64
}

type cacheEntry struct {
	key string
	mod *Module
}

// flight is one in-progress load that concurrent requests for the same key
// wait on instead of parsing redundantly. mod/err are written exactly once,
// before done is closed; waiters read them only after <-done.
type flight struct {
	done chan struct{}
	mod  *Module
	err  error
}

// DefaultModuleCacheCapacity is used when NewModuleCache is given a
// non-positive capacity.
const DefaultModuleCacheCapacity = 128

// NewModuleCache builds a cache holding at most capacity modules
// (DefaultModuleCacheCapacity when capacity <= 0).
func NewModuleCache(capacity int) *ModuleCache {
	if capacity <= 0 {
		capacity = DefaultModuleCacheCapacity
	}
	return &ModuleCache{
		capacity: capacity,
		order:    list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// SourceHash returns the cache key for a source text under opts: a hex
// SHA-256 over the source and the load options that change a Module's
// meaning. Callers can use it to correlate requests with cache entries.
func SourceHash(src string, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "nat=%d\x00", opts.NatWidth)
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// Load returns the cached Module for src under opts, loading and caching
// it on a miss. It reports the cache key and whether the module was served
// from cache. Loads with a custom Funcs registry bypass the cache (the
// registry's contents cannot be hashed); they always load fresh and report
// hit=false with an empty key.
//
// Concurrent first requests for the same key are coalesced (singleflight):
// one leader parses while the rest wait on its result and report hit=true.
// A waiter whose own context expires gives up independently; if the leader
// fails, each waiter retries from the top (one of them becomes the new
// leader) rather than inheriting an error that may have been the leader's
// private cancellation.
func (c *ModuleCache) Load(ctx context.Context, src string, opts Options) (mod *Module, key string, hit bool, err error) {
	if err := pool.Canceled(ctx); err != nil {
		return nil, "", false, err
	}
	if opts.Funcs != nil {
		m, err := Load(ctx, src, opts)
		return m, "", false, err
	}
	key = SourceHash(src, opts)

	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			m := el.Value.(*cacheEntry).mod
			c.mu.Unlock()
			return m, key, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, key, false, pool.Canceled(ctx)
			case <-f.done:
			}
			if f.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return f.mod, key, true, nil
			}
			continue
		}
		c.misses++
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		// Load outside the lock: a slow load must not stall hits on other
		// keys. Later arrivals for this key park on f.done instead of
		// loading the same source again. The disk tier is probed first —
		// inside the flight, so a store read also happens once per key.
		m, fromStore := c.loadFromStore(key)
		var err error
		if m == nil {
			m, err = Load(ctx, src, opts)
		}
		f.mod, f.err = m, err
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, key, false, err
		}
		c.wirePersist(key, m)
		c.add(key, m)
		if !fromStore {
			// Persist on first compile so a restart can at least skip the
			// parse; result persists (wirePersist) enrich the artifact as
			// requests compute trace sets and verdicts.
			c.persist(key, m)
		}
		return m, key, fromStore, nil
	}
}

// SetStore attaches an on-disk artifact store as the cache's second tier
// and must be called before the cache is shared across goroutines. logf
// receives operational messages (corrupt artifacts, persist failures);
// nil discards them.
func (c *ModuleCache) SetStore(st *store.Store, logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c.st, c.logf = st, logf
}

// Store returns the attached artifact store, or nil.
func (c *ModuleCache) Store() *store.Store { return c.st }

// loadFromStore probes the disk tier for key. A corrupt artifact is
// quarantined, logged, and reported as a miss — the caller recompiles; a
// version-skewed artifact is logged and left in place (the next persist
// overwrites it). Never fatal.
func (c *ModuleCache) loadFromStore(key string) (*Module, bool) {
	if c.st == nil {
		return nil, false
	}
	// GetMapped: the artifact's trie arena stays in the mmap'd file image
	// and the rehydrated module's results serve reads straight off it —
	// boot cost is the checksum pass, not a graph rebuild, and RSS is
	// file-backed pages the kernel can evict or share.
	art, n, err := c.st.GetMapped(key)
	if err == nil {
		var m *Module
		if m, err = moduleFromArtifact(art); err == nil {
			c.mu.Lock()
			c.storeHits++
			c.storeMapped++
			c.storeBytesRead += uint64(n)
			c.mu.Unlock()
			return m, true
		}
		// A structurally valid file the facade cannot rehydrate (unknown
		// engine name, undecodable verdicts) is corrupt for our purposes.
		err = fmt.Errorf("%w: %v", store.ErrCorrupt, err)
	}
	switch {
	case errors.Is(err, store.ErrNotFound):
		c.mu.Lock()
		c.storeMisses++
		c.mu.Unlock()
	case errors.Is(err, store.ErrVersionSkew):
		c.mu.Lock()
		c.storeCorrupt++
		c.mu.Unlock()
		c.logf("store: stale artifact %s: %v (recomputing)", key, err)
	default:
		c.mu.Lock()
		c.storeCorrupt++
		c.mu.Unlock()
		if qerr := c.st.Quarantine(key); qerr != nil {
			c.logf("store: quarantining %s: %v", key, qerr)
		}
		c.logf("store: corrupt artifact %s quarantined: %v (recomputing)", key, err)
	}
	return nil, false
}

// wirePersist makes every newly recorded result on m re-persist its
// artifact. No-op without a store or for modules without source.
func (c *ModuleCache) wirePersist(key string, m *Module) {
	if c.st == nil || m.src == "" {
		return
	}
	m.res.setOnResult(func() { c.persist(key, m) })
}

// persist writes m's current artifact under key. Failures are logged and
// counted, never returned: persistence is an optimization, not a
// correctness requirement.
func (c *ModuleCache) persist(key string, m *Module) {
	if c.st == nil || m.src == "" {
		return
	}
	c.persistMu.Lock()
	defer c.persistMu.Unlock()
	created := m.createdUnix
	if created == 0 {
		created = time.Now().Unix()
		m.createdUnix = created
	}
	art, err := m.buildArtifact(key, created)
	if err != nil {
		c.logf("store: building artifact %s: %v", key, err)
		return
	}
	n, err := c.st.Put(art)
	if err != nil {
		c.logf("store: persisting %s: %v", key, err)
		return
	}
	c.mu.Lock()
	c.storePuts++
	c.storeBytesWritten += uint64(n)
	c.mu.Unlock()
}

// WarmBoot loads every artifact in the attached store into the memory
// tier, reporting how many modules were rehydrated and how many artifacts
// were skipped (corrupt, stale, or unreadable — logged, quarantined where
// appropriate, never fatal). Keys already resident are counted as loaded
// without touching the disk. Respects ctx between artifacts.
func (c *ModuleCache) WarmBoot(ctx context.Context) (loaded, skipped int, err error) {
	if c.st == nil {
		return 0, 0, nil
	}
	keys, err := c.st.Keys()
	if err != nil {
		return 0, 0, err
	}
	for _, key := range keys {
		if err := pool.Canceled(ctx); err != nil {
			return loaded, skipped, err
		}
		c.mu.Lock()
		_, resident := c.entries[key]
		c.mu.Unlock()
		if resident {
			loaded++
			continue
		}
		m, ok := c.loadFromStore(key)
		if !ok {
			skipped++
			continue
		}
		c.wirePersist(key, m)
		c.add(key, m)
		loaded++
	}
	return loaded, skipped, nil
}

func (c *ModuleCache) add(key string, m *Module) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, mod: m})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// ModuleCacheStats is a snapshot of a ModuleCache's effectiveness.
type ModuleCacheStats struct {
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Evicted  uint64 `json:"evicted"`
	// Coalesced counts requests that joined an in-progress load of the
	// same key instead of parsing it themselves.
	Coalesced uint64 `json:"coalesced"`
	// The Store* counters cover the on-disk tier (zero without SetStore):
	// artifacts rehydrated (hits), keys with no artifact (misses), corrupt
	// or stale artifacts skipped (corrupt), artifacts written (puts), and
	// bytes moved in each direction.
	StoreHits         uint64 `json:"store_hits"`
	StoreMisses       uint64 `json:"store_misses"`
	StoreCorrupt      uint64 `json:"store_corrupt"`
	StorePuts         uint64 `json:"store_puts"`
	// StoreMapped counts store hits loaded through the zero-copy mapped
	// path: the module's trie arena aliases the file image (mmap'd pages
	// on unix, one flat read elsewhere) instead of being rebuilt node by
	// node through the interner.
	StoreMapped       uint64 `json:"store_mapped"`
	StoreBytesRead    uint64 `json:"store_bytes_read"`
	StoreBytesWritten uint64 `json:"store_bytes_written"`
}

// Stats returns a consistent snapshot of the cache counters.
func (c *ModuleCache) Stats() ModuleCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ModuleCacheStats{
		Size:              c.order.Len(),
		Capacity:          c.capacity,
		Hits:              c.hits,
		Misses:            c.misses,
		Evicted:           c.evicted,
		Coalesced:         c.coalesced,
		StoreHits:         c.storeHits,
		StoreMisses:       c.storeMisses,
		StoreCorrupt:      c.storeCorrupt,
		StorePuts:         c.storePuts,
		StoreMapped:       c.storeMapped,
		StoreBytesRead:    c.storeBytesRead,
		StoreBytesWritten: c.storeBytesWritten,
	}
}
