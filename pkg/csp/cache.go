// Module caching for resident hosts. A long-running verification service
// sees the same specs over and over; parsing is cheap, but a fresh Module
// re-derives every canonical trie from scratch, while a cached Module's
// engines hit the memo tables warmed by earlier requests on the very same
// *closure.Set pointers. The cache key is a hash of the source text and
// the load options, so "the same spec" means byte-identical source, not
// filename identity.
package csp

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"cspsat/internal/pool"
)

// ModuleCache is a bounded LRU of loaded Modules keyed by source hash.
// Modules are immutable once loaded (their engines share the global intern
// shards), so one cached Module may serve many concurrent requests. The
// zero value is not usable; construct with NewModuleCache.
type ModuleCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used; values are *cacheEntry
	entries   map[string]*list.Element
	inflight  map[string]*flight
	hits      uint64
	misses    uint64
	evicted   uint64
	coalesced uint64
}

type cacheEntry struct {
	key string
	mod *Module
}

// flight is one in-progress load that concurrent requests for the same key
// wait on instead of parsing redundantly. mod/err are written exactly once,
// before done is closed; waiters read them only after <-done.
type flight struct {
	done chan struct{}
	mod  *Module
	err  error
}

// DefaultModuleCacheCapacity is used when NewModuleCache is given a
// non-positive capacity.
const DefaultModuleCacheCapacity = 128

// NewModuleCache builds a cache holding at most capacity modules
// (DefaultModuleCacheCapacity when capacity <= 0).
func NewModuleCache(capacity int) *ModuleCache {
	if capacity <= 0 {
		capacity = DefaultModuleCacheCapacity
	}
	return &ModuleCache{
		capacity: capacity,
		order:    list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// SourceHash returns the cache key for a source text under opts: a hex
// SHA-256 over the source and the load options that change a Module's
// meaning. Callers can use it to correlate requests with cache entries.
func SourceHash(src string, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "nat=%d\x00", opts.NatWidth)
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// Load returns the cached Module for src under opts, loading and caching
// it on a miss. It reports the cache key and whether the module was served
// from cache. Loads with a custom Funcs registry bypass the cache (the
// registry's contents cannot be hashed); they always load fresh and report
// hit=false with an empty key.
//
// Concurrent first requests for the same key are coalesced (singleflight):
// one leader parses while the rest wait on its result and report hit=true.
// A waiter whose own context expires gives up independently; if the leader
// fails, each waiter retries from the top (one of them becomes the new
// leader) rather than inheriting an error that may have been the leader's
// private cancellation.
func (c *ModuleCache) Load(ctx context.Context, src string, opts Options) (mod *Module, key string, hit bool, err error) {
	if err := pool.Canceled(ctx); err != nil {
		return nil, "", false, err
	}
	if opts.Funcs != nil {
		m, err := Load(ctx, src, opts)
		return m, "", false, err
	}
	key = SourceHash(src, opts)

	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			m := el.Value.(*cacheEntry).mod
			c.mu.Unlock()
			return m, key, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, key, false, pool.Canceled(ctx)
			case <-f.done:
			}
			if f.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return f.mod, key, true, nil
			}
			continue
		}
		c.misses++
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		// Parse outside the lock: a slow load must not stall hits on other
		// keys. Later arrivals for this key park on f.done instead of
		// parsing the same source again.
		m, err := Load(ctx, src, opts)
		f.mod, f.err = m, err
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, key, false, err
		}
		c.add(key, m)
		return m, key, false, nil
	}
}

func (c *ModuleCache) add(key string, m *Module) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, mod: m})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// ModuleCacheStats is a snapshot of a ModuleCache's effectiveness.
type ModuleCacheStats struct {
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Evicted  uint64 `json:"evicted"`
	// Coalesced counts requests that joined an in-progress load of the
	// same key instead of parsing it themselves.
	Coalesced uint64 `json:"coalesced"`
}

// Stats returns a consistent snapshot of the cache counters.
func (c *ModuleCache) Stats() ModuleCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ModuleCacheStats{
		Size:      c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evicted:   c.evicted,
		Coalesced: c.coalesced,
	}
}
