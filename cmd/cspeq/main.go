// Command cspeq compares two processes from a .csp file under both
// semantic models this repository implements:
//
//   - the paper's trace (prefix-closure) model — partial correctness,
//     where STOP | P = P and deadlock is invisible; and
//   - the stable-failures model (the §4 "more realistic model of
//     non-determinism"), where refusals distinguish internal choice and
//     deadlock potential is observable.
//
// Usage:
//
//	cspeq [-depth N] [-nat W] [-workers N] [-timeout D] [-stats] file.csp P Q
//
// Exit status is 0 regardless of the verdicts (the comparison itself is
// the output); 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"

	"cspsat/internal/cli"
	"cspsat/pkg/csp"
)

func main() {
	app := cli.New("cspeq", "cspeq [-depth N] [-nat W] [-workers N] [-timeout D] [-stats] file.csp P Q")
	app.NatFlag(3)
	depth := flag.Int("depth", 6, "trace-length bound for both models")
	args := app.Parse(3)
	ctx, cancel := app.Context()
	defer cancel()

	mod := app.Load(ctx, args[0])
	p := app.Proc(mod, args[1])
	q := app.Proc(mod, args[2])
	pName, qName := args[1], args[2]
	copts := csp.CheckOptions{Depth: *depth, Workers: app.Workers}
	eopts := csp.EngineOptions{Depth: *depth, Workers: app.Workers}
	exitOn := func(err error) {
		if err != nil {
			app.Fatal(err)
		}
	}

	// --- trace model ---
	fmt.Printf("== trace model (the paper's §3 prefix closures, depth %d) ==\n", *depth)
	pq, err := mod.Refines(ctx, p, q, copts)
	exitOn(err)
	qp, err := mod.Refines(ctx, q, p, copts)
	exitOn(err)
	printRefine(pName, qName, pq.OK, traceWitness(pq.Witness))
	printRefine(qName, pName, qp.OK, traceWitness(qp.Witness))
	if pq.OK && qp.OK {
		fmt.Printf("   %s and %s are trace-equivalent\n", pName, qName)
	}

	// --- failures model ---
	fmt.Printf("\n== stable-failures model (the §4 extension, depth %d) ==\n", *depth)
	mp, err := mod.Failures(ctx, p, eopts)
	exitOn(err)
	mq, err := mod.Failures(ctx, q, eopts)
	exitOn(err)
	fpq, err := csp.FailuresRefines(mp, mq)
	exitOn(err)
	fqp, err := csp.FailuresRefines(mq, mp)
	exitOn(err)
	printRefine(pName, qName, fpq == nil, cexString(fpq))
	printRefine(qName, pName, fqp == nil, cexString(fqp))
	if fpq == nil && fqp == nil {
		fmt.Printf("   %s and %s are failures-equivalent\n", pName, qName)
	}
	for _, pr := range []struct {
		name string
		proc csp.Proc
		m    *csp.FailuresModel
	}{{pName, p, mp}, {qName, q, mq}} {
		if tr, can := pr.m.CanDeadlock(); can {
			fmt.Printf("   %s can deadlock (after %s)\n", pr.name, tr)
		} else {
			fmt.Printf("   %s is deadlock-free to this depth\n", pr.name)
		}
		dtr, div, err := mod.Diverges(ctx, pr.proc, eopts)
		exitOn(err)
		if div {
			fmt.Printf("   %s can diverge (internal chatter forever, after %s)\n", pr.name, dtr)
		} else {
			fmt.Printf("   %s is divergence-free to this depth\n", pr.name)
		}
	}
	app.Finish()
}

func printRefine(a, b string, ok bool, why string) {
	if ok {
		fmt.Printf("   %s ⊑ %s holds\n", a, b)
		return
	}
	fmt.Printf("   %s ⊑ %s FAILS: %s\n", a, b, why)
}

func traceWitness(w csp.Trace) string {
	if w == nil {
		return ""
	}
	return "witness " + w.String()
}

func cexString(c *csp.FailuresCounterexample) string {
	if c == nil {
		return ""
	}
	return c.String()
}
