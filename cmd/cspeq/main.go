// Command cspeq compares two processes from a .csp file under both
// semantic models this repository implements:
//
//   - the paper's trace (prefix-closure) model — partial correctness,
//     where STOP | P = P and deadlock is invisible; and
//   - the stable-failures model (the §4 "more realistic model of
//     non-determinism"), where refusals distinguish internal choice and
//     deadlock potential is observable.
//
// Usage:
//
//	cspeq [-depth N] [-nat W] file.csp P Q
//
// Exit status is 0 regardless of the verdicts (the comparison itself is
// the output); 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"cspsat/internal/core"
	"cspsat/internal/failures"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

func main() {
	depth := flag.Int("depth", 6, "trace-length bound for both models")
	nat := flag.Int("nat", 3, "enumeration width of the NAT domain")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cspeq [-depth N] [-nat W] file.csp P Q\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 3 {
		flag.Usage()
		os.Exit(2)
	}
	sys, err := core.LoadFile(flag.Arg(0), core.Options{NatWidth: *nat})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspeq:", err)
		os.Exit(2)
	}
	p, err := sys.Proc(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspeq:", err)
		os.Exit(2)
	}
	q, err := sys.Proc(flag.Arg(2))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspeq:", err)
		os.Exit(2)
	}
	pName, qName := flag.Arg(1), flag.Arg(2)

	// --- trace model ---
	ck := sys.Checker(*depth)
	fmt.Printf("== trace model (the paper's §3 prefix closures, depth %d) ==\n", *depth)
	pq, err := ck.Refines(p, q)
	exitOn(err)
	qp, err := ck.Refines(q, p)
	exitOn(err)
	printRefine(pName, qName, pq.OK, traceWitness(pq.Witness))
	printRefine(qName, pName, qp.OK, traceWitness(qp.Witness))
	if pq.OK && qp.OK {
		fmt.Printf("   %s and %s are trace-equivalent\n", pName, qName)
	}

	// --- failures model ---
	fmt.Printf("\n== stable-failures model (the §4 extension, depth %d) ==\n", *depth)
	mp, err := computeModel(p, sys.Env(), *depth)
	exitOn(err)
	mq, err := computeModel(q, sys.Env(), *depth)
	exitOn(err)
	fpq, err := failures.Refines(mp, mq)
	exitOn(err)
	fqp, err := failures.Refines(mq, mp)
	exitOn(err)
	printRefine(pName, qName, fpq == nil, cexString(fpq))
	printRefine(qName, pName, fqp == nil, cexString(fqp))
	if fpq == nil && fqp == nil {
		fmt.Printf("   %s and %s are failures-equivalent\n", pName, qName)
	}
	for _, pr := range []struct {
		name string
		proc syntax.Proc
		m    *failures.Model
	}{{pName, p, mp}, {qName, q, mq}} {
		if tr, can := pr.m.CanDeadlock(); can {
			fmt.Printf("   %s can deadlock (after %s)\n", pr.name, tr)
		} else {
			fmt.Printf("   %s is deadlock-free to this depth\n", pr.name)
		}
		dtr, div, err := failures.Diverges(pr.proc, sys.Env(), *depth)
		exitOn(err)
		if div {
			fmt.Printf("   %s can diverge (internal chatter forever, after %s)\n", pr.name, dtr)
		} else {
			fmt.Printf("   %s is divergence-free to this depth\n", pr.name)
		}
	}
}

func computeModel(p syntax.Proc, env sem.Env, depth int) (*failures.Model, error) {
	return failures.Compute(p, env, depth)
}

func printRefine(a, b string, ok bool, why string) {
	if ok {
		fmt.Printf("   %s ⊑ %s holds\n", a, b)
		return
	}
	fmt.Printf("   %s ⊑ %s FAILS: %s\n", a, b, why)
}

func traceWitness(w trace.T) string {
	if w == nil {
		return ""
	}
	return "witness " + w.String()
}

func cexString(c *failures.Counterexample) string {
	if c == nil {
		return ""
	}
	return c.String()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspeq:", err)
		os.Exit(2)
	}
}
