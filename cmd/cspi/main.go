// Command cspi is an interactive process stepper: it presents the menu of
// communications a process currently offers, performs the one you pick,
// and tracks the growing trace — with the file's sat-assertions evaluated
// live after every step.
//
// Usage:
//
//	cspi [-nat W] file.csp process
//
// Inside the session: enter a number to perform that communication;
// :menu :trace :hist :accept :random [n] :undo :reset :quit.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"cspsat/internal/core"
	"cspsat/internal/repl"
)

func main() {
	nat := flag.Int("nat", 3, "enumeration width of the NAT domain")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cspi [-nat W] file.csp process\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	sys, err := core.LoadFile(flag.Arg(0), core.Options{NatWidth: *nat})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspi:", err)
		os.Exit(2)
	}
	p, err := sys.Proc(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspi:", err)
		os.Exit(2)
	}
	r := repl.New(p, sys.Env(), sys.Funcs())
	for _, decl := range sys.Asserts {
		if decl.A != nil && len(decl.Quants) == 0 && reflect.DeepEqual(decl.Proc, p) {
			r.Monitor(decl.A)
		}
	}
	fmt.Printf("stepping %s from %s (:help for commands)\n", flag.Arg(1), flag.Arg(0))
	if err := r.Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cspi:", err)
		os.Exit(1)
	}
}
