// Command cspi is an interactive process stepper: it presents the menu of
// communications a process currently offers, performs the one you pick,
// and tracks the growing trace — with the file's sat-assertions evaluated
// live after every step.
//
// Usage:
//
//	cspi [-nat W] [-timeout D] [-stats] file.csp process
//
// Inside the session: enter a number to perform that communication;
// :menu :trace :hist :accept :random [n] :undo :reset :quit.
package main

import (
	"fmt"
	"os"
	"reflect"

	"cspsat/internal/cli"
	"cspsat/internal/repl"
)

func main() {
	app := cli.New("cspi", "cspi [-nat W] [-timeout D] [-stats] file.csp process")
	app.NatFlag(3)
	args := app.Parse(2)
	ctx, cancel := app.Context()
	defer cancel()

	mod := app.Load(ctx, args[0])
	p := app.Proc(mod, args[1])
	r := repl.New(p, mod.Env(), mod.Funcs())
	for _, decl := range mod.Asserts() {
		if decl.A != nil && len(decl.Quants) == 0 && reflect.DeepEqual(decl.Proc, p) {
			r.Monitor(decl.A)
		}
	}
	fmt.Printf("stepping %s from %s (:help for commands)\n", args[1], args[0])
	if err := r.Run(os.Stdin, os.Stdout); err != nil {
		app.Fail(err)
	}
	app.Finish()
}
