// Command cspcheck model-checks the assert clauses of a .csp file: every
// trace of each asserted process, up to a depth bound, is checked against
// its assertion, exactly the paper's semantics of "P sat R" restricted to
// bounded traces over sampled message domains.
//
// The -model flag selects the semantic model verdicts are computed under.
// The default, traces, is the paper's model: refusal-level assertions
// (deadlockfree, offers) hold vacuously there — §4's admission that sat
// cannot see a deadlock. With -model failures the same assertions are
// discharged against the §4 stable-failures model, and refinement asserts
// become failures refinement, so "STOP |~| P refines P" correctly fails.
//
// With -store DIR the run shares cspserved's artifact store: the compiled
// module is reused when persisted, and the verdicts this run computes are
// persisted back so a cspserved (or cspstore verify) over the same
// directory sees them without recomputing.
//
// Usage:
//
//	cspcheck [-depth N] [-nat W] [-model M] [-deadlocks] [-store DIR] [-workers N] [-timeout D] [-stats] file.csp
//
// Exit status 1 when any assertion fails (or the deadlock search finds
// one), 2 on usage or load errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"cspsat/internal/cli"
	"cspsat/pkg/csp"
)

func main() {
	app := cli.New("cspcheck", "cspcheck [-depth N] [-nat W] [-model M] [-deadlocks] [-store DIR] [-workers N] [-timeout D] [-stats] file.csp")
	app.NatFlag(3)
	app.StoreFlag()
	app.ModelFlag()
	depth := flag.Int("depth", 8, "trace-length bound for the exhaustive check")
	deadlocks := flag.Bool("deadlocks", false, "also search asserted processes for reachable deadlocks (deprecated: prefer -model failures with 'sat deadlockfree' asserts)")
	args := app.Parse(1)
	mdl := app.Model()
	ctx, cancel := app.Context()
	defer cancel()

	mod := app.Load(ctx, args[0])
	if len(mod.Asserts()) == 0 {
		fmt.Println("cspcheck: no assert clauses in file")
		return
	}
	results, err := mod.CheckAll(ctx, csp.CheckOptions{Model: mdl, Depth: *depth, Workers: app.Workers})
	if err != nil {
		app.Fatal(err)
	}
	// The persisted check-verdict block is the trace-model one (the cache
	// key carries no model); failures-model runs are never stored so a
	// later traces-model reader cannot pick up the wrong verdicts.
	if mdl == csp.ModelTraces {
		mod.StoreCheck(*depth, csp.EncodeAssertResults(results))
	}
	fmt.Print(csp.FormatAssertResults(results))
	bad := false
	for _, r := range results {
		if !r.OK() {
			bad = true
		}
	}
	if *deadlocks {
		if findDeadlocks(ctx, app, mod, *depth) {
			bad = true
		}
	}
	app.Finish()
	if bad {
		os.Exit(1)
	}
}

// findDeadlocks runs the deadlock search over each distinct unquantified
// asserted process; it returns true if any deadlock was found.
func findDeadlocks(ctx context.Context, app *cli.App, mod *csp.Module, depth int) bool {
	opts := csp.CheckOptions{Depth: depth, Workers: app.Workers}
	seen := map[string]bool{}
	found := false
	for _, decl := range mod.Asserts() {
		if len(decl.Quants) != 0 {
			continue
		}
		key := decl.Proc.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		dls, err := mod.Deadlocks(ctx, decl.Proc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cspcheck: deadlock search for %s: %v\n", decl.Proc, err)
			found = true
			continue
		}
		if len(dls) == 0 {
			fmt.Printf("OK    %s is deadlock-free up to depth %d\n", decl.Proc, depth)
			continue
		}
		found = true
		for _, d := range dls {
			fmt.Printf("DEAD  %s can deadlock after %s\n      stuck residual: %s\n",
				decl.Proc, d.Trace, residual(d.State.Proc))
		}
	}
	return found
}

func residual(p csp.Proc) string {
	s := p.String()
	const maxShown = 120
	if len(s) > maxShown {
		return s[:maxShown] + "…"
	}
	return s
}
