// Command cspcheck model-checks the assert clauses of a .csp file: every
// trace of each asserted process, up to a depth bound, is checked against
// its assertion, exactly the paper's semantics of "P sat R" restricted to
// bounded traces over sampled message domains. With -deadlocks it
// additionally searches each asserted process for reachable stuck
// configurations — the property the paper's §4 admits sat cannot express.
//
// Usage:
//
//	cspcheck [-depth N] [-nat W] [-deadlocks] file.csp
//
// Exit status 1 when any assertion fails (or -deadlocks finds one), 2 on
// usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"cspsat/internal/core"
	"cspsat/internal/syntax"
)

func main() {
	depth := flag.Int("depth", 8, "trace-length bound for the exhaustive check")
	nat := flag.Int("nat", 3, "enumeration width of the NAT domain")
	deadlocks := flag.Bool("deadlocks", false, "also search asserted processes for reachable deadlocks")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cspcheck [-depth N] [-nat W] [-deadlocks] file.csp\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	sys, err := core.LoadFile(flag.Arg(0), core.Options{NatWidth: *nat})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspcheck:", err)
		os.Exit(2)
	}
	if len(sys.Asserts) == 0 {
		fmt.Println("cspcheck: no assert clauses in file")
		return
	}
	results, err := sys.CheckAll(*depth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspcheck:", err)
		os.Exit(2)
	}
	fmt.Print(core.FormatAssertResults(results))
	bad := false
	for _, r := range results {
		if !r.OK() {
			bad = true
		}
	}
	if *deadlocks {
		if findDeadlocks(sys, *depth) {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

// findDeadlocks runs the deadlock search over each distinct unquantified
// asserted process; it returns true if any deadlock was found.
func findDeadlocks(sys *core.System, depth int) bool {
	ck := sys.Checker(depth)
	seen := map[string]bool{}
	found := false
	for _, decl := range sys.Asserts {
		if len(decl.Quants) != 0 {
			continue
		}
		key := decl.Proc.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		dls, err := ck.Deadlocks(decl.Proc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cspcheck: deadlock search for %s: %v\n", decl.Proc, err)
			found = true
			continue
		}
		if len(dls) == 0 {
			fmt.Printf("OK    %s is deadlock-free up to depth %d\n", decl.Proc, depth)
			continue
		}
		found = true
		for _, d := range dls {
			fmt.Printf("DEAD  %s can deadlock after %s\n      stuck residual: %s\n",
				decl.Proc, d.Trace, residual(d.State.Proc))
		}
	}
	return found
}

func residual(p syntax.Proc) string {
	s := p.String()
	const maxShown = 120
	if len(s) > maxShown {
		return s[:maxShown] + "…"
	}
	return s
}
