// Command cspsim executes a process from a .csp file as a network of
// goroutines with true CSP rendezvous, printing each communication as it
// happens. Assert clauses naming the process are attached as online
// monitors: the run aborts with a diagnostic if one is violated.
//
// Usage:
//
//	cspsim [-seed S] [-events N] [-nat W] [-v] file.csp process
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"cspsat/internal/core"
	"cspsat/internal/runtime"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for non-deterministic choices")
	events := flag.Int("events", 40, "stop after this many communications")
	nat := flag.Int("nat", 3, "enumeration width of the NAT domain")
	verbose := flag.Bool("v", false, "print hidden (τ) communications too")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cspsim [-seed S] [-events N] [-nat W] [-v] file.csp process\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	sys, err := core.LoadFile(flag.Arg(0), core.Options{NatWidth: *nat})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspsim:", err)
		os.Exit(2)
	}
	name := flag.Arg(1)
	p, err := sys.Proc(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspsim:", err)
		os.Exit(2)
	}

	// Attach every assert about this process as a monitor.
	var monitors []runtime.Monitor
	for _, decl := range sys.Asserts {
		if decl.A != nil && len(decl.Quants) == 0 && reflect.DeepEqual(decl.Proc, p) {
			monitors = append(monitors, runtime.MonitorSat(decl.A, sys.Env(), sys.Funcs()))
			fmt.Printf("-- monitoring: %s\n", decl.A)
		}
	}
	printer := func(rec runtime.EventRecord, hist trace.History) error {
		if rec.Hidden {
			if *verbose {
				fmt.Printf("  τ %s\n", rec.Ev)
			}
			return nil
		}
		fmt.Printf("  %s\n", rec.Ev)
		return nil
	}
	all := append([]runtime.Monitor{printer}, monitors...)
	combined := func(rec runtime.EventRecord, hist trace.History) error {
		for _, m := range all {
			if err := m(rec, hist); err != nil {
				return err
			}
		}
		return nil
	}

	res, err := runtime.Run(p, runtime.Config{
		Env:       sys.Env(),
		Seed:      *seed,
		MaxEvents: *events,
		Monitor:   combined,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cspsim:", err)
		os.Exit(1)
	}
	fmt.Printf("-- %d goroutine leaves, %d events, visible trace length %d\n",
		res.LeafCount, len(res.Events), len(res.Trace))
	if res.Quiescent {
		fmt.Println("-- network quiescent (no communication possible)")
	}
	if res.MonitorErr != nil {
		fmt.Fprintf(os.Stderr, "cspsim: MONITOR VIOLATION: %v\n", res.MonitorErr)
		os.Exit(1)
	}
	_ = syntax.Proc(nil)
}
