// Command cspsim executes a process from a .csp file as a network of
// goroutines with true CSP rendezvous, printing each communication as it
// happens. Assert clauses naming the process are attached as online
// monitors: the run aborts with a diagnostic if one is violated.
//
// Usage:
//
//	cspsim [-seed S] [-events N] [-nat W] [-v] [-timeout D] [-stats] file.csp process
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"cspsat/internal/cli"
	"cspsat/pkg/csp"
)

func main() {
	app := cli.New("cspsim", "cspsim [-seed S] [-events N] [-nat W] [-v] [-timeout D] [-stats] file.csp process")
	app.NatFlag(3)
	seed := flag.Int64("seed", 1, "random seed for non-deterministic choices")
	events := flag.Int("events", 40, "stop after this many communications")
	verbose := flag.Bool("v", false, "print hidden (τ) communications too")
	args := app.Parse(2)
	ctx, cancel := app.Context()
	defer cancel()

	mod := app.Load(ctx, args[0])
	name := args[1]
	p := app.Proc(mod, name)

	// Attach every assert about this process as a monitor, after the
	// printer so violations report against an already-printed event.
	printer := func(rec csp.EventRecord, hist csp.History) error {
		if rec.Hidden {
			if *verbose {
				fmt.Printf("  τ %s\n", rec.Ev)
			}
			return nil
		}
		fmt.Printf("  %s\n", rec.Ev)
		return nil
	}
	monitors := []csp.Monitor{printer}
	for _, decl := range mod.Asserts() {
		if decl.A != nil && len(decl.Quants) == 0 && reflect.DeepEqual(decl.Proc, p) {
			monitors = append(monitors, mod.MonitorSat(decl.A))
			fmt.Printf("-- monitoring: %s\n", decl.A)
		}
	}

	res, err := mod.Run(ctx, p, csp.EngineOptions{Seed: *seed, MaxEvents: *events}, monitors...)
	if err != nil {
		app.Fail(err)
	}
	fmt.Printf("-- %d goroutine leaves, %d events, visible trace length %d\n",
		res.LeafCount, len(res.Events), len(res.Trace))
	if res.Quiescent {
		fmt.Println("-- network quiescent (no communication possible)")
	}
	app.Finish()
	if res.MonitorErr != nil {
		fmt.Fprintf(os.Stderr, "cspsim: MONITOR VIOLATION: %v\n", res.MonitorErr)
		os.Exit(1)
	}
}
