// Command cspprove synthesises and checks §2.1-style proofs for the assert
// clauses of a .csp file, using the automatic prover behind
// csp.Module.ProveAsserts (shared with cspserved's /v1/prove endpoint):
// recursion goals are attempted jointly first, then individually as one
// batch across the -workers pool, and network asserts are assembled from
// the component proofs with the §2.2(3) glue. Pure side conditions are
// discharged by bounded validity; every accepted proof is fully
// re-verified by the rule checker.
//
// Usage:
//
//	cspprove [-nat W] [-maxlen L] [-model M] [-v] [-show] [-store DIR] [-workers N] [-timeout D] [-stats] file.csp
//
// The uniform -model flag is accepted for symmetry with cspcheck and
// csptrace, but the §2.1 proof system is a trace-model calculus: only
// -model traces is provable; -model failures is rejected with a pointer to
// cspcheck, whose failures-model checker discharges refusal-level claims.
//
// With -store DIR the run shares cspserved's artifact store: the compiled
// module is reused when persisted, and the proof verdicts are persisted
// back for the next reader of the same directory.
//
// Exit status 1 when any assert cannot be proved (it may still hold — use
// cspcheck for refutation), 2 on load errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"cspsat/internal/assertion"
	"cspsat/internal/cli"
	"cspsat/internal/proof"
	"cspsat/internal/value"
	"cspsat/pkg/csp"
)

func main() {
	app := cli.New("cspprove", "cspprove [-nat W] [-maxlen L] [-model M] [-v] [-show] [-store DIR] [-workers N] [-timeout D] [-stats] file.csp")
	app.NatFlag(2)
	app.StoreFlag()
	app.ModelFlag()
	maxLen := flag.Int("maxlen", 3, "history-length bound for validity obligations")
	verbose := flag.Bool("v", false, "print each verified rule application")
	show := flag.Bool("show", false, "render each successful proof in the paper's Table-1 style")
	args := app.Parse(1)
	if mdl := app.Model(); mdl != csp.ModelTraces {
		app.Fatal(fmt.Errorf("the §2.1 proof rules are a trace-model calculus and cannot discharge %s-model claims; use cspcheck -model %s", mdl, mdl))
	}
	ctx, cancel := app.Context()
	defer cancel()

	mod := app.Load(ctx, args[0])
	if len(mod.Asserts()) == 0 {
		fmt.Println("cspprove: no assert clauses in file")
		return
	}

	copts := csp.CheckOptions{
		Workers: app.Workers,
		Validity: &assertion.ValidityConfig{
			MaxLen: *maxLen,
			DefaultDom: value.Union{
				A: value.Nat{SampleWidth: app.Nat},
				B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK")),
			},
		},
	}
	var log func(string)
	if *verbose {
		log = func(s string) { fmt.Println("   ", s) }
	}

	results, err := mod.ProveAsserts(ctx, copts, log)
	if err == nil {
		mod.StoreProve(*maxLen, csp.EncodeProveResults(results))
	}
	failed := false
	if *show {
		renderProofs(mod, ctx, copts, results)
	}
	for _, r := range results {
		switch {
		case r.OK && r.Method == "network glue":
			fmt.Printf("ok   proved %s (network glue)\n", r.Decl)
		case r.OK:
			fmt.Printf("ok   proved %s\n", r.Decl)
		default:
			failed = true
			fmt.Printf("FAIL %s\n     %v\n", r.Decl, r.Err)
		}
	}
	if err != nil {
		app.Fail(err)
	}
	app.Finish()
	if failed {
		os.Exit(1)
	}
}

// renderProofs re-checks each successful recursion proof with step
// collection on and prints it in the paper's numbered style.
func renderProofs(mod *csp.Module, ctx context.Context, copts csp.CheckOptions, results []csp.ProveResult) {
	prover := mod.Prover(ctx, copts)
	seen := map[string]bool{}
	for _, r := range results {
		if !r.OK || r.Proof == nil || r.Method == "network glue" {
			continue
		}
		key := fmt.Sprintf("%s sat %s", r.Name, r.A)
		if seen[key] {
			continue
		}
		seen[key] = true
		var steps []proof.Step
		prover.Steps = &steps
		if _, err := prover.Check(r.Proof); err != nil {
			continue
		}
		prover.Steps = nil
		fmt.Printf("\n-- proof of %s --\n", key)
		_ = proof.Render(os.Stdout, steps)
	}
	fmt.Println()
}
