// Command cspprove synthesises and checks §2.1-style proofs for the assert
// clauses of a .csp file, using the automatic prover of internal/auto.
//
// Strategy, mirroring the shape of the paper's own development:
//
//  1. Asserts about (possibly arrayed) recursive definitions become goals
//     for the recursion rule, attempted jointly first (mutual recursion, as
//     in Table 1 where sender's claim needs q's); goals whose synthesis
//     fails are dropped from the joint attempt and retried individually —
//     the retries are verified as one batch across the -workers pool.
//  2. Asserts about network definitions (parallel compositions, possibly
//     hidden and named) are assembled from the proofs of phase 1 with the
//     parallelism/consequence/chan/unfold glue — the §2.2(3) six-step shape.
//
// Pure side conditions are discharged by bounded validity; every accepted
// proof is fully re-verified by the rule checker.
//
// Usage:
//
//	cspprove [-nat W] [-maxlen L] [-v] [-show] [-workers N] [-timeout D] [-stats] file.csp
//
// Exit status 1 when any assert cannot be proved (it may still hold — use
// cspcheck for refutation), 2 on load errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"cspsat/internal/assertion"
	"cspsat/internal/auto"
	"cspsat/internal/cli"
	"cspsat/internal/parser"
	"cspsat/internal/proof"
	"cspsat/internal/syntax"
	"cspsat/internal/value"
	"cspsat/pkg/csp"
)

func main() {
	app := cli.New("cspprove", "cspprove [-nat W] [-maxlen L] [-v] [-show] [-workers N] [-timeout D] [-stats] file.csp")
	app.NatFlag(2)
	maxLen := flag.Int("maxlen", 3, "history-length bound for validity obligations")
	verbose := flag.Bool("v", false, "print each verified rule application")
	show := flag.Bool("show", false, "render each successful proof in the paper's Table-1 style")
	args := app.Parse(1)
	ctx, cancel := app.Context()
	defer cancel()

	mod := app.Load(ctx, args[0])
	if len(mod.Asserts()) == 0 {
		fmt.Println("cspprove: no assert clauses in file")
		return
	}

	copts := csp.CheckOptions{
		Workers: app.Workers,
		Validity: &assertion.ValidityConfig{
			MaxLen: *maxLen,
			DefaultDom: value.Union{
				A: value.Nat{SampleWidth: app.Nat},
				B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK")),
			},
		},
	}
	prover := mod.Prover(ctx, copts)
	if *verbose {
		prover.Log = func(s string) { fmt.Println("   ", s) }
	}

	d := driver{mod: mod, ctx: ctx, copts: copts, prover: prover, show: *show}
	d.run()
	app.Finish()
	if d.failed {
		os.Exit(1)
	}
}

type driver struct {
	mod    *csp.Module
	ctx    context.Context
	copts  csp.CheckOptions
	prover *proof.Checker
	failed bool
	show   bool
	// proved collects every established claim (with its proof) per
	// definition; phase 2's network glue picks the combination that makes
	// the final weakening go through.
	proved map[string][]provedEntry
}

type provedEntry struct {
	a  assertion.A
	pr proof.Proof
}

func (d *driver) run() {
	d.proved = map[string][]provedEntry{}

	recGoals, netDecls := d.classify()

	// Phase 1: joint recursion, shedding unsynthesisable goals.
	pending := make([]auto.Goal, 0, len(recGoals))
	seenName := map[string]bool{}
	for _, e := range recGoals {
		// Conflicting claims about the same definition cannot share one
		// recursion application; keep the first for the joint attempt.
		if !seenName[e.goal.Name] {
			seenName[e.goal.Name] = true
			pending = append(pending, e.goal)
		}
	}
	for len(pending) > 0 {
		pr, err := auto.Recursive(d.mod.Env(), pending)
		if err != nil {
			var ge *auto.GoalError
			if errors.As(err, &ge) {
				pending = dropGoal(pending, ge.Name)
				continue
			}
			break
		}
		if _, err := d.prover.Check(pr); err != nil {
			// The joint candidate failed checking; fall back to
			// individual attempts for everything.
			break
		}
		for i, g := range pending {
			d.markProved(g, pending, i)
		}
		break
	}
	d.proveRemaining(recGoals)
	if d.show {
		d.renderProved()
	}

	// Phase 2: network asserts glued from phase 1's component proofs,
	// trying every combination of established component claims.
	for _, decl := range netDecls {
		ref := decl.Proc.(syntax.Ref)
		if err := d.proveNetwork(ref.Name, decl.A); err != nil {
			d.failed = true
			fmt.Printf("FAIL %s\n     %v\n", decl, err)
			continue
		}
		fmt.Printf("ok   proved %s (network glue)\n", decl)
	}
}

// proveRemaining covers every recursion goal the joint attempt left
// unproved: each is synthesised individually, then the synthesised
// candidates are verified as one batch across the worker pool. Lines are
// reported in goal order regardless of batch completion order.
func (d *driver) proveRemaining(recGoals []goalEntry) {
	lines := make([]string, len(recGoals))
	var obs []csp.Obligation
	var obsGoal []goalEntry // parallel to obs: the goal each obligation proves
	for i, e := range recGoals {
		if d.hasProved(e.goal.Name, e.goal.A) {
			lines[i] = fmt.Sprintf("ok   proved %s", e.decl)
			continue
		}
		pr, err := auto.Recursive(d.mod.Env(), []auto.Goal{e.goal})
		if err != nil {
			d.failed = true
			lines[i] = fmt.Sprintf("FAIL %s\n     %v", e.decl, err)
			continue
		}
		lines[i] = "" // resolved by the batch below
		obs = append(obs, csp.Obligation{Name: e.decl, Proof: pr})
		obsGoal = append(obsGoal, goalEntry{goal: e.goal, decl: e.decl, line: i})
	}
	if len(obs) > 0 {
		// A cancellation error surfaces as Err on the unprocessed entries.
		results, _ := d.mod.CheckBatch(d.ctx, obs, d.copts)
		for bi, r := range results {
			e := obsGoal[bi]
			if r.Err != nil {
				d.failed = true
				lines[e.line] = fmt.Sprintf("FAIL %s\n     %v", e.decl, r.Err)
				continue
			}
			d.addProved(e.goal.Name, e.goal.A, obs[bi].Proof)
			lines[e.line] = fmt.Sprintf("ok   proved %s", e.decl)
		}
	}
	for _, l := range lines {
		if l != "" {
			fmt.Println(l)
		}
	}
}

// renderProved re-checks each recorded proof with step collection on and
// prints it in the paper's numbered style.
func (d *driver) renderProved() {
	names := make([]string, 0, len(d.proved))
	for n := range d.proved {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, e := range d.proved[n] {
			var steps []proof.Step
			d.prover.Steps = &steps
			if _, err := d.prover.Check(e.pr); err != nil {
				continue
			}
			d.prover.Steps = nil
			fmt.Printf("\n-- proof of %s sat %s --\n", n, e.a)
			_ = proof.Render(os.Stdout, steps)
		}
	}
	fmt.Println()
}

// proveNetwork tries the network glue with each combination of proved
// component claims (the combination count is the product of per-name claim
// counts, small in practice).
func (d *driver) proveNetwork(name string, final assertion.A) error {
	names := make([]string, 0, len(d.proved))
	for n := range d.proved {
		names = append(names, n)
	}
	sort.Strings(names)
	idx := make([]int, len(names))
	var lastErr error
	for {
		comps := map[string]proof.Proof{}
		claims := map[string]assertion.A{}
		for i, n := range names {
			e := d.proved[n][idx[i]]
			comps[n] = e.pr
			claims[n] = e.a
		}
		pr, err := auto.Network(d.mod.Env(), name, comps, claims, final)
		if err == nil {
			if _, err = d.prover.Check(pr); err == nil {
				return nil
			}
		}
		lastErr = err
		i := 0
		for ; i < len(names); i++ {
			idx[i]++
			if idx[i] < len(d.proved[names[i]]) {
				break
			}
			idx[i] = 0
		}
		if i == len(names) {
			if lastErr == nil {
				lastErr = fmt.Errorf("no proved component claims available")
			}
			return lastErr
		}
	}
}

func (d *driver) hasProved(name string, a assertion.A) bool {
	want := fmt.Sprint(a)
	for _, e := range d.proved[name] {
		if fmt.Sprint(e.a) == want {
			return true
		}
	}
	return false
}

func (d *driver) addProved(name string, a assertion.A, pr proof.Proof) {
	if d.hasProved(name, a) {
		return
	}
	d.proved[name] = append(d.proved[name], provedEntry{a: a, pr: pr})
}

// markProved records a joint-recursion goal's proof for reuse by the
// network glue: the same joint proof is regenerated with this goal's
// definition leading, so its claim is the conclusion (the recursion rule
// establishes all participating claims; Main selects which one the proof
// object reports).
func (d *driver) markProved(g auto.Goal, joint []auto.Goal, idx int) {
	if d.hasProved(g.Name, g.A) {
		return
	}
	rotated := make([]auto.Goal, 0, len(joint))
	rotated = append(rotated, joint[idx])
	rotated = append(rotated, joint[:idx]...)
	rotated = append(rotated, joint[idx+1:]...)
	if pr, err := auto.Recursive(d.mod.Env(), rotated); err == nil {
		d.addProved(g.Name, g.A, pr)
	}
}

// goalEntry pairs a recursion goal with the assert text it came from and
// its output slot in proveRemaining.
type goalEntry struct {
	goal auto.Goal
	decl string
	line int
}

// classify splits asserts into recursion goals and network-shaped asserts.
func (d *driver) classify() (goals []goalEntry, netDecls []parser.AssertDecl) {
	for _, decl := range d.mod.Asserts() {
		if decl.A == nil {
			continue // refinement asserts are cspcheck's business
		}
		ref, ok := decl.Proc.(syntax.Ref)
		if !ok {
			continue
		}
		def, found := d.mod.Syntax().Lookup(ref.Name)
		if !found {
			continue
		}
		if len(decl.Quants) == 0 && ref.Sub == nil {
			if isNetworkDef(def.Body) {
				netDecls = append(netDecls, decl)
				continue
			}
			goals = append(goals, goalEntry{goal: auto.Goal{Name: ref.Name, A: decl.A}, decl: decl.String()})
			continue
		}
		if len(decl.Quants) == 1 && ref.Sub != nil && def.IsArray() {
			v, isVar := ref.Sub.(syntax.Var)
			if !isVar || v.Name != decl.Quants[0].Var {
				continue
			}
			a := decl.A
			if v.Name != def.Param {
				a = assertion.SubstVar(a, v.Name, assertion.Var(def.Param))
			}
			goals = append(goals, goalEntry{goal: auto.Goal{Name: ref.Name, A: a}, decl: decl.String()})
		}
	}
	return goals, netDecls
}

// isNetworkDef reports whether a definition's body is a composition shape
// (parallel or hiding, possibly through references) rather than a
// communicating process.
func isNetworkDef(p syntax.Proc) bool {
	switch t := p.(type) {
	case syntax.Par, syntax.Hiding:
		return true
	case syntax.Ref:
		_ = t
		return false
	default:
		return false
	}
}

func dropGoal(gs []auto.Goal, name string) []auto.Goal {
	out := gs[:0]
	for _, g := range gs {
		if g.Name != name {
			out = append(out, g)
		}
	}
	return out
}
