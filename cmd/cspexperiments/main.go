// Command cspexperiments regenerates the reproduction table of
// EXPERIMENTS.md: every checkable claim of the paper (E1–E14) and the
// implemented extensions (E15–E18), each verified live and reported on one
// line. Exit status 1 if any experiment fails.
//
// Usage:
//
//	cspexperiments [-depth N] [-only E7] [-workers N] [-timeout D] [-stats]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cspsat/internal/assertion"
	"cspsat/internal/auto"
	"cspsat/internal/cli"
	"cspsat/internal/closure"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/proofs"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
	"cspsat/pkg/csp"
)

type experiment struct {
	id    string
	claim string
	run   func(depth int) (string, error)
}

// runCtx and workers are set once from the uniform flags in main; the
// experiment closures read them so each row honours -timeout and -workers.
var (
	runCtx  context.Context = context.Background()
	workers                 = 1
)

func main() {
	app := cli.New("cspexperiments", "cspexperiments [-depth N] [-only E7] [-workers N] [-timeout D] [-stats]")
	depth := flag.Int("depth", 7, "trace-length bound for the model checks")
	only := flag.String("only", "", "run a single experiment, e.g. E7")
	app.Parse(0)
	ctx, cancel := app.Context()
	defer cancel()
	runCtx = ctx
	workers = app.Workers

	failed := false
	for _, e := range experiments() {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		outcome, err := e.run(*depth)
		if err != nil {
			failed = true
			fmt.Printf("%-4s FAIL  %-52s %v\n", e.id, e.claim, err)
			continue
		}
		fmt.Printf("%-4s ok    %-52s %s\n", e.id, e.claim, outcome)
	}
	if app.Stats {
		// The table's statistics report goes to stdout — it is part of the
		// regenerated record, not diagnostics.
		cli.WriteStats(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}

// helpers shared by the experiment closures

func copyMod() *csp.Module  { return csp.FromModule(paper.CopySystem(), csp.Options{NatWidth: 2}) }
func protoMod() *csp.Module { return csp.FromModule(paper.ProtocolSystem(2), csp.Options{NatWidth: 2}) }

func copyValidity() *assertion.ValidityConfig {
	return &assertion.ValidityConfig{MaxLen: 3}
}

func protoValidity() *assertion.ValidityConfig {
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	return &assertion.ValidityConfig{
		MaxLen: 3,
		ChanDom: map[string]value.Domain{
			"wire":   value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))},
			"input":  msgs,
			"output": msgs,
		},
		DefaultDom: msgs,
	}
}

func satLine(mod *csp.Module, name string, a assertion.A, depth int) (string, error) {
	res, err := mod.Sat(runCtx, syntax.Ref{Name: name}, a, csp.CheckOptions{Depth: depth, Workers: workers})
	if err != nil {
		return "", err
	}
	if !res.OK {
		return "", fmt.Errorf("%s", res)
	}
	return fmt.Sprintf("model check: %d traces, depth %d", res.TracesChecked, res.Depth), nil
}

func proveAndCheck(mod *csp.Module, validity *assertion.ValidityConfig, pr proof.Proof, name string, a assertion.A, depth int) (string, error) {
	if _, err := mod.Check(runCtx, pr, csp.CheckOptions{Validity: validity}); err != nil {
		return "", fmt.Errorf("proof: %w", err)
	}
	line, err := satLine(mod, name, a, depth)
	if err != nil {
		return "", err
	}
	return "proof checked; " + line, nil
}

func traces(mod *csp.Module, p csp.Proc, engine csp.Engine, depth int) (*csp.TraceSet, error) {
	res, err := mod.Traces(runCtx, p, csp.EngineOptions{Engine: engine, Depth: depth, Workers: workers})
	if err != nil {
		return nil, err
	}
	return res.Set, nil
}

func experiments() []experiment {
	return []experiment{
		{"E1", "copier sat wire <= input (§2, §2.1(6))", func(d int) (string, error) {
			return proveAndCheck(copyMod(), copyValidity(), proofs.CopierProof(), paper.NameCopier, paper.CopierSat(), d)
		}},
		{"E2", "copier sat #input <= #wire+1 (§2)", func(d int) (string, error) {
			return satLine(copyMod(), paper.NameCopier, paper.CopierLenSat(), d)
		}},
		{"E3", "recopier sat output <= wire (§2)", func(d int) (string, error) {
			return proveAndCheck(copyMod(), copyValidity(), proofs.RecopierProof(), paper.NameRecopier, paper.RecopierSat(), d)
		}},
		{"E4", "copysys sat output <= input (§2.1(8),(9))", func(d int) (string, error) {
			return proveAndCheck(copyMod(), copyValidity(), proofs.CopyNetworkProof(), paper.NameCopySys, paper.CopyNetSat(), d)
		}},
		{"E5", "sender sat f(wire) <= input (Table 1)", func(d int) (string, error) {
			return proveAndCheck(protoMod(), protoValidity(), proofs.SenderTable1Proof(), paper.NameSender, paper.SenderSat(), d)
		}},
		{"E6", "receiver sat output <= f(wire) (§2.2(2))", func(d int) (string, error) {
			return proveAndCheck(protoMod(), protoValidity(), proofs.ReceiverProof(), paper.NameReceiver, paper.ReceiverSat(), d)
		}},
		{"E7", "protocol sat output <= input (§2.2(3))", func(d int) (string, error) {
			return proveAndCheck(protoMod(), protoValidity(), proofs.ProtocolProof(), paper.NameProtocol, paper.ProtocolSat(), d)
		}},
		{"E8", "multiplier scalar-product invariant (§2, §1.3(5))", func(d int) (string, error) {
			mod := csp.FromModule(paper.MultiplierSystem([]int64{5, 3, 2}), csp.Options{NatWidth: 2})
			return satLine(mod, paper.NameMultiplier, paper.MultiplierSat(), d)
		}},
		{"E9", "STOP sat any satisfiable R (§2.1(4), §4)", func(d int) (string, error) {
			mod := copyMod()
			if _, err := mod.Check(runCtx, proofs.StopSatExample(), csp.CheckOptions{Validity: copyValidity()}); err != nil {
				return "", err
			}
			res, err := mod.Sat(runCtx, syntax.Stop{}, paper.CopierSat(), csp.CheckOptions{Depth: d, Workers: workers})
			if err != nil || !res.OK {
				return "", fmt.Errorf("%v %v", res, err)
			}
			return "emptiness proof + model check of STOP", nil
		}},
		{"E10", "STOP | P = P in the trace model (§4)", func(d int) (string, error) {
			ck := copyMod().Checker(runCtx, csp.CheckOptions{Depth: d, Workers: workers})
			copier := syntax.Ref{Name: paper.NameCopier}
			res, err := ck.Equivalent(syntax.Alt{L: syntax.Stop{}, R: copier}, copier)
			if err != nil {
				return "", err
			}
			if !res.OK {
				return "", fmt.Errorf("not equivalent: %s", res)
			}
			return fmt.Sprintf("trace-equivalent to depth %d", d), nil
		}},
		{"E11", "§3.1 closure laws (parallel = ignore∩ignore …)", func(d int) (string, error) {
			// Spot-verify the headline identity on the copier operands.
			mod := copyMod()
			left, err := traces(mod, syntax.Ref{Name: paper.NameCopier}, csp.EngineOp, 4)
			if err != nil {
				return "", err
			}
			right, err := traces(mod, syntax.Ref{Name: paper.NameRecopier}, csp.EngineOp, 4)
			if err != nil {
				return "", err
			}
			x := trace.NewSet("input", "wire")
			y := trace.NewSet("wire", "output")
			chatterR := []trace.Event{{Chan: "output", Msg: value.Int(0)}, {Chan: "output", Msg: value.Int(1)}}
			chatterL := []trace.Event{{Chan: "input", Msg: value.Int(0)}, {Chan: "input", Msg: value.Int(1)}}
			budget := left.MaxLen() + right.MaxLen()
			lhs := closure.Parallel(left, right, x, y)
			rhs := closure.Intersect(
				closure.Ignore(left, chatterR, budget),
				closure.Ignore(right, chatterL, budget),
			)
			if !lhs.Equal(rhs) {
				return "", fmt.Errorf("product walk differs from the paper's ⇑/∩ definition")
			}
			return "parallel = (P⇑(Y−X)) ∩ (Q⇑(X−Y)) verified; full law set in tests", nil
		}},
		{"E12", "denotational chain = operational traces (§3.3)", func(d int) (string, error) {
			mod := protoMod()
			p := syntax.Ref{Name: paper.NameProtocol}
			w := d
			if w > 5 {
				w = 5 // the literal chain materialises pre-hiding sets
			}
			den, err := traces(mod, p, csp.EngineDenote, w)
			if err != nil {
				return "", err
			}
			ops, err := traces(mod, p, csp.EngineOp, w)
			if err != nil {
				return "", err
			}
			if !den.Equal(ops) {
				return "", fmt.Errorf("engines disagree at depth %d", w)
			}
			return fmt.Sprintf("identical trace sets at depth %d", w), nil
		}},
		{"E13", "§3.4 lemmas about ch(s) and substitution", func(d int) (string, error) {
			// The worked ch(s) example of §3.3.
			s := trace.T{
				{Chan: "input", Msg: value.Int(27)}, {Chan: "wire", Msg: value.Int(27)},
				{Chan: "input", Msg: value.Int(0)}, {Chan: "wire", Msg: value.Int(0)},
				{Chan: "input", Msg: value.Int(3)},
			}
			h := trace.Ch(s)
			if h.String() != "input=<27,0,3>, wire=<27,0>" {
				return "", fmt.Errorf("ch(s) differs from the paper's example: %s", h)
			}
			return "ch(s) worked example exact; lemmas (a)-(d) in property tests", nil
		}},
		{"E14", "rule soundness: proofs vs model checker", func(d int) (string, error) {
			for _, pc := range []struct {
				mod      *csp.Module
				validity *assertion.ValidityConfig
				pr       proof.Proof
			}{
				{copyMod(), copyValidity(), proofs.CopierProof()},
				{copyMod(), copyValidity(), proofs.CopyNetworkProof()},
				{protoMod(), protoValidity(), proofs.SenderTable1Proof()},
				{protoMod(), protoValidity(), proofs.ProtocolProof()},
			} {
				if _, err := pc.mod.Check(runCtx, pc.pr, csp.CheckOptions{Validity: pc.validity}); err != nil {
					return "", err
				}
			}
			if _, err := satLine(protoMod(), paper.NameProtocol, paper.ProtocolSat(), d); err != nil {
				return "", err
			}
			return "all machine proofs check and their conclusions model-check", nil
		}},
		{"E15", "failures model resolves the §4 defect", func(d int) (string, error) {
			mod := copyMod()
			copier := syntax.Ref{Name: paper.NameCopier}
			flaky := syntax.IChoice{L: syntax.Stop{}, R: copier}
			w := min(d, 4)
			mc, err := mod.Failures(runCtx, copier, csp.EngineOptions{Depth: w})
			if err != nil {
				return "", err
			}
			mf, err := mod.Failures(runCtx, flaky, csp.EngineOptions{Depth: w})
			if err != nil {
				return "", err
			}
			cex, err := csp.FailuresEquivalent(mf, mc)
			if err != nil {
				return "", err
			}
			if cex == nil {
				return "", fmt.Errorf("STOP |~| P not distinguished from P")
			}
			return fmt.Sprintf("STOP |~| P ≠F P (%s)", cex), nil
		}},
		{"E16", "Table 1 synthesised automatically", func(d int) (string, error) {
			mod := protoMod()
			pr, err := auto.Recursive(mod.Env(), []auto.Goal{
				{Name: paper.NameSender, A: paper.SenderSat()},
				{Name: paper.NameQ, A: paper.QSat()},
			})
			if err != nil {
				return "", err
			}
			var steps []proof.Step
			prover := mod.Prover(runCtx, csp.CheckOptions{Validity: protoValidity()})
			prover.Steps = &steps
			if _, err := prover.Check(pr); err != nil {
				return "", err
			}
			return fmt.Sprintf("synthesised and checked in %d rule applications", len(steps)), nil
		}},
		{"E17", "philosophers: deadlock invisible to sat", func(d int) (string, error) {
			data, err := os.ReadFile(findSpec("philosophers.csp"))
			if err != nil {
				return "", err
			}
			return philosophers(string(data), min(d, 6))
		}},
		{"E18", "the protocol diverges (fairness evasion)", func(d int) (string, error) {
			tr, div, err := protoMod().Diverges(runCtx, syntax.Ref{Name: paper.NameProtocol}, csp.EngineOptions{Depth: min(d, 3)})
			if err != nil {
				return "", err
			}
			if !div {
				return "", fmt.Errorf("NACK livelock not found")
			}
			return fmt.Sprintf("diverges after %s (retransmission livelock)", tr), nil
		}},
	}
}

func philosophers(src string, depth int) (string, error) {
	mod, err := csp.Load(runCtx, src, csp.Options{NatWidth: 2})
	if err != nil {
		return "", err
	}
	opts := csp.CheckOptions{Depth: depth, Workers: workers}
	bad, err := mod.Deadlocks(runCtx, syntax.Ref{Name: "deadlocking"}, opts)
	if err != nil {
		return "", err
	}
	if len(bad) == 0 {
		return "", fmt.Errorf("naive table's deadlock not found")
	}
	good, err := mod.Deadlocks(runCtx, syntax.Ref{Name: "safe"}, opts)
	if err != nil {
		return "", err
	}
	if len(good) != 0 {
		return "", fmt.Errorf("left-handed table deadlocks")
	}
	return "naive table deadlocks, left-handed table certified free", nil
}

func findSpec(name string) string {
	for _, dir := range []string{"specs", "../specs", "../../specs"} {
		p := dir + "/" + name
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return "specs/" + name
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
