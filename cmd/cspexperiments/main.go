// Command cspexperiments regenerates the reproduction table of
// EXPERIMENTS.md: every checkable claim of the paper (E1–E14) and the
// implemented extensions (E15–E18), each verified live and reported on one
// line. Exit status 1 if any experiment fails.
//
// Usage:
//
//	cspexperiments [-depth N] [-only E7]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cspsat/internal/assertion"
	"cspsat/internal/auto"
	"cspsat/internal/check"
	"cspsat/internal/closure"
	"cspsat/internal/failures"
	"cspsat/internal/op"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/proofs"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

type experiment struct {
	id    string
	claim string
	run   func(depth int) (string, error)
}

func main() {
	depth := flag.Int("depth", 7, "trace-length bound for the model checks")
	only := flag.String("only", "", "run a single experiment, e.g. E7")
	stats := flag.Bool("stats", false, "print closure interning/memo cache statistics after the run")
	flag.Parse()

	failed := false
	for _, e := range experiments() {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		outcome, err := e.run(*depth)
		if err != nil {
			failed = true
			fmt.Printf("%-4s FAIL  %-52s %v\n", e.id, e.claim, err)
			continue
		}
		fmt.Printf("%-4s ok    %-52s %s\n", e.id, e.claim, outcome)
	}
	if *stats {
		printCacheStats()
	}
	if failed {
		os.Exit(1)
	}
}

// printCacheStats reports the closure layer's hash-consing effectiveness
// over the whole run: how many canonical trie nodes the experiments
// needed, and how often the operator memo tables answered instead of
// recomputing.
func printCacheStats() {
	s := closure.Stats()
	fmt.Printf("\nclosure caches: %d interned nodes (%d hits / %d misses, %d evicted in %d rotations)\n",
		s.InternedNodes, s.InternHits, s.InternMisses, s.Evicted, s.Rotations)
	total := s.MemoHits + s.MemoMisses
	rate := 0.0
	if total > 0 {
		rate = float64(s.MemoHits) / float64(total) * 100
	}
	fmt.Printf("operator memos: %d hits / %d misses (%.1f%% hit rate)\n", s.MemoHits, s.MemoMisses, rate)
	ops := make([]string, 0, len(s.Ops))
	for name := range s.Ops {
		ops = append(ops, name)
	}
	sort.Strings(ops)
	for _, name := range ops {
		o := s.Ops[name]
		fmt.Printf("  %-10s %8d hits %8d misses\n", name, o.Hits, o.Misses)
	}
}

// helpers shared by the experiment closures

func copyEnv() sem.Env  { return sem.NewEnv(paper.CopySystem(), 2) }
func protoEnv() sem.Env { return sem.NewEnv(paper.ProtocolSystem(2), 2) }

func copyProver() *proof.Checker {
	c := proof.NewChecker(copyEnv(), nil)
	c.Validity = assertion.ValidityConfig{MaxLen: 3}
	return c
}

func protoProver() *proof.Checker {
	c := proof.NewChecker(protoEnv(), nil)
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	c.Validity = assertion.ValidityConfig{
		MaxLen: 3,
		ChanDom: map[string]value.Domain{
			"wire":   value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))},
			"input":  msgs,
			"output": msgs,
		},
		DefaultDom: msgs,
	}
	return c
}

func satLine(env sem.Env, name string, a assertion.A, depth int) (string, error) {
	res, err := check.New(env, nil, depth).Sat(syntax.Ref{Name: name}, a)
	if err != nil {
		return "", err
	}
	if !res.OK {
		return "", fmt.Errorf("%s", res)
	}
	return fmt.Sprintf("model check: %d traces, depth %d", res.TracesChecked, res.Depth), nil
}

func proveAndCheck(prover *proof.Checker, pr proof.Proof, env sem.Env, name string, a assertion.A, depth int) (string, error) {
	if _, err := prover.Check(pr); err != nil {
		return "", fmt.Errorf("proof: %w", err)
	}
	line, err := satLine(env, name, a, depth)
	if err != nil {
		return "", err
	}
	return "proof checked; " + line, nil
}

func experiments() []experiment {
	return []experiment{
		{"E1", "copier sat wire <= input (§2, §2.1(6))", func(d int) (string, error) {
			return proveAndCheck(copyProver(), proofs.CopierProof(), copyEnv(), paper.NameCopier, paper.CopierSat(), d)
		}},
		{"E2", "copier sat #input <= #wire+1 (§2)", func(d int) (string, error) {
			return satLine(copyEnv(), paper.NameCopier, paper.CopierLenSat(), d)
		}},
		{"E3", "recopier sat output <= wire (§2)", func(d int) (string, error) {
			return proveAndCheck(copyProver(), proofs.RecopierProof(), copyEnv(), paper.NameRecopier, paper.RecopierSat(), d)
		}},
		{"E4", "copysys sat output <= input (§2.1(8),(9))", func(d int) (string, error) {
			return proveAndCheck(copyProver(), proofs.CopyNetworkProof(), copyEnv(), paper.NameCopySys, paper.CopyNetSat(), d)
		}},
		{"E5", "sender sat f(wire) <= input (Table 1)", func(d int) (string, error) {
			return proveAndCheck(protoProver(), proofs.SenderTable1Proof(), protoEnv(), paper.NameSender, paper.SenderSat(), d)
		}},
		{"E6", "receiver sat output <= f(wire) (§2.2(2))", func(d int) (string, error) {
			return proveAndCheck(protoProver(), proofs.ReceiverProof(), protoEnv(), paper.NameReceiver, paper.ReceiverSat(), d)
		}},
		{"E7", "protocol sat output <= input (§2.2(3))", func(d int) (string, error) {
			return proveAndCheck(protoProver(), proofs.ProtocolProof(), protoEnv(), paper.NameProtocol, paper.ProtocolSat(), d)
		}},
		{"E8", "multiplier scalar-product invariant (§2, §1.3(5))", func(d int) (string, error) {
			env := sem.NewEnv(paper.MultiplierSystem([]int64{5, 3, 2}), 2)
			return satLine(env, paper.NameMultiplier, paper.MultiplierSat(), d)
		}},
		{"E9", "STOP sat any satisfiable R (§2.1(4), §4)", func(d int) (string, error) {
			prover := copyProver()
			if _, err := prover.Check(proofs.StopSatExample()); err != nil {
				return "", err
			}
			res, err := check.New(copyEnv(), nil, d).Sat(syntax.Stop{}, paper.CopierSat())
			if err != nil || !res.OK {
				return "", fmt.Errorf("%v %v", res, err)
			}
			return "emptiness proof + model check of STOP", nil
		}},
		{"E10", "STOP | P = P in the trace model (§4)", func(d int) (string, error) {
			ck := check.New(copyEnv(), nil, d)
			copier := syntax.Ref{Name: paper.NameCopier}
			res, err := ck.Equivalent(syntax.Alt{L: syntax.Stop{}, R: copier}, copier)
			if err != nil {
				return "", err
			}
			if !res.OK {
				return "", fmt.Errorf("not equivalent: %s", res)
			}
			return fmt.Sprintf("trace-equivalent to depth %d", d), nil
		}},
		{"E11", "§3.1 closure laws (parallel = ignore∩ignore …)", func(d int) (string, error) {
			// Spot-verify the headline identity on the copier operands.
			env := copyEnv()
			left, err := op.Traces(syntax.Ref{Name: paper.NameCopier}, env, 4)
			if err != nil {
				return "", err
			}
			right, err := op.Traces(syntax.Ref{Name: paper.NameRecopier}, env, 4)
			if err != nil {
				return "", err
			}
			x := trace.NewSet("input", "wire")
			y := trace.NewSet("wire", "output")
			chatterR := []trace.Event{{Chan: "output", Msg: value.Int(0)}, {Chan: "output", Msg: value.Int(1)}}
			chatterL := []trace.Event{{Chan: "input", Msg: value.Int(0)}, {Chan: "input", Msg: value.Int(1)}}
			budget := left.MaxLen() + right.MaxLen()
			lhs := closure.Parallel(left, right, x, y)
			rhs := closure.Intersect(
				closure.Ignore(left, chatterR, budget),
				closure.Ignore(right, chatterL, budget),
			)
			if !lhs.Equal(rhs) {
				return "", fmt.Errorf("product walk differs from the paper's ⇑/∩ definition")
			}
			return "parallel = (P⇑(Y−X)) ∩ (Q⇑(X−Y)) verified; full law set in tests", nil
		}},
		{"E12", "denotational chain = operational traces (§3.3)", func(d int) (string, error) {
			env := protoEnv()
			p := syntax.Ref{Name: paper.NameProtocol}
			w := d
			if w > 5 {
				w = 5 // the literal chain materialises pre-hiding sets
			}
			den, err := sem.Denote(p, env, w)
			if err != nil {
				return "", err
			}
			ops, err := op.Traces(p, env, w)
			if err != nil {
				return "", err
			}
			if !den.Equal(ops) {
				return "", fmt.Errorf("engines disagree at depth %d", w)
			}
			return fmt.Sprintf("identical trace sets at depth %d", w), nil
		}},
		{"E13", "§3.4 lemmas about ch(s) and substitution", func(d int) (string, error) {
			// The worked ch(s) example of §3.3.
			s := trace.T{
				{Chan: "input", Msg: value.Int(27)}, {Chan: "wire", Msg: value.Int(27)},
				{Chan: "input", Msg: value.Int(0)}, {Chan: "wire", Msg: value.Int(0)},
				{Chan: "input", Msg: value.Int(3)},
			}
			h := trace.Ch(s)
			if h.String() != "input=<27,0,3>, wire=<27,0>" {
				return "", fmt.Errorf("ch(s) differs from the paper's example: %s", h)
			}
			return "ch(s) worked example exact; lemmas (a)-(d) in property tests", nil
		}},
		{"E14", "rule soundness: proofs vs model checker", func(d int) (string, error) {
			for _, pc := range []struct {
				prover *proof.Checker
				pr     proof.Proof
			}{
				{copyProver(), proofs.CopierProof()},
				{copyProver(), proofs.CopyNetworkProof()},
				{protoProver(), proofs.SenderTable1Proof()},
				{protoProver(), proofs.ProtocolProof()},
			} {
				if _, err := pc.prover.Check(pc.pr); err != nil {
					return "", err
				}
			}
			if _, err := satLine(protoEnv(), paper.NameProtocol, paper.ProtocolSat(), d); err != nil {
				return "", err
			}
			return "all machine proofs check and their conclusions model-check", nil
		}},
		{"E15", "failures model resolves the §4 defect", func(d int) (string, error) {
			env := copyEnv()
			copier := syntax.Ref{Name: paper.NameCopier}
			flaky := syntax.IChoice{L: syntax.Stop{}, R: copier}
			w := min(d, 4)
			mc, err := failures.Compute(copier, env, w)
			if err != nil {
				return "", err
			}
			mf, err := failures.Compute(flaky, env, w)
			if err != nil {
				return "", err
			}
			cex, err := failures.Equivalent(mf, mc)
			if err != nil {
				return "", err
			}
			if cex == nil {
				return "", fmt.Errorf("STOP |~| P not distinguished from P")
			}
			return fmt.Sprintf("STOP |~| P ≠F P (%s)", cex), nil
		}},
		{"E16", "Table 1 synthesised automatically", func(d int) (string, error) {
			pr, err := auto.Recursive(protoEnv(), []auto.Goal{
				{Name: paper.NameSender, A: paper.SenderSat()},
				{Name: paper.NameQ, A: paper.QSat()},
			})
			if err != nil {
				return "", err
			}
			var steps []proof.Step
			prover := protoProver()
			prover.Steps = &steps
			if _, err := prover.Check(pr); err != nil {
				return "", err
			}
			return fmt.Sprintf("synthesised and checked in %d rule applications", len(steps)), nil
		}},
		{"E17", "philosophers: deadlock invisible to sat", func(d int) (string, error) {
			data, err := os.ReadFile(findSpec("philosophers.csp"))
			if err != nil {
				return "", err
			}
			return philosophers(string(data), min(d, 6))
		}},
		{"E18", "the protocol diverges (fairness evasion)", func(d int) (string, error) {
			tr, div, err := failures.Diverges(syntax.Ref{Name: paper.NameProtocol}, protoEnv(), min(d, 3))
			if err != nil {
				return "", err
			}
			if !div {
				return "", fmt.Errorf("NACK livelock not found")
			}
			return fmt.Sprintf("diverges after %s (retransmission livelock)", tr), nil
		}},
	}
}

func philosophers(src string, depth int) (string, error) {
	f, err := parseSpec(src)
	if err != nil {
		return "", err
	}
	env := sem.NewEnv(f, 2)
	bad, err := op.FindDeadlocks(op.NewState(syntax.Ref{Name: "deadlocking"}, env), depth)
	if err != nil {
		return "", err
	}
	if len(bad) == 0 {
		return "", fmt.Errorf("naive table's deadlock not found")
	}
	good, err := op.FindDeadlocks(op.NewState(syntax.Ref{Name: "safe"}, env), depth)
	if err != nil {
		return "", err
	}
	if len(good) != 0 {
		return "", fmt.Errorf("left-handed table deadlocks")
	}
	return "naive table deadlocks, left-handed table certified free", nil
}

func findSpec(name string) string {
	for _, dir := range []string{"specs", "../specs", "../../specs"} {
		p := dir + "/" + name
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return "specs/" + name
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
