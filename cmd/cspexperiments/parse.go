package main

import (
	"cspsat/internal/parser"
	"cspsat/internal/syntax"
)

// parseSpec parses .csp source into its module.
func parseSpec(src string) (*syntax.Module, error) {
	f, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return f.Module, nil
}
