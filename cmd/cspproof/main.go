// Command cspproof replays the machine-encoded proofs from the paper —
// §2.1's copier examples, Table 1's sender proof, the §2.2 receiver
// exercise, and the six-step protocol proof — through the proof checker,
// printing each verified rule application. It then cross-checks every
// conclusion with the model checker.
//
// Usage:
//
//	cspproof [-which all|copier|protocol] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"cspsat/internal/assertion"
	"cspsat/internal/check"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/proofs"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/value"
)

func main() {
	which := flag.String("which", "all", "proof group to replay: all, copier, protocol")
	verbose := flag.Bool("v", false, "print every verified rule application")
	show := flag.Bool("show", false, "render each proof in the paper's Table-1 style")
	flag.Parse()
	showSteps = *show

	ok := true
	if *which == "all" || *which == "copier" {
		ok = runGroup("copier system", copierChecker(*verbose), copierGroup(), copierCrossChecks()) && ok
	}
	if *which == "all" || *which == "protocol" {
		ok = runGroup("protocol", protocolChecker(*verbose), protocolGroup(), protocolCrossChecks()) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

type namedProof struct {
	name string
	p    proof.Proof
}

type crossCheck struct {
	name  string
	ck    *check.Checker
	proc  syntax.Proc
	claim assertion.A
}

func copierChecker(verbose bool) *proof.Checker {
	env := sem.NewEnv(paper.CopySystem(), 2)
	c := proof.NewChecker(env, nil)
	c.Validity = assertion.ValidityConfig{MaxLen: 3}
	if verbose {
		c.Log = func(s string) { fmt.Println("   ", s) }
	}
	return c
}

func protocolChecker(verbose bool) *proof.Checker {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	c := proof.NewChecker(env, nil)
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	c.Validity = assertion.ValidityConfig{
		MaxLen: 3,
		ChanDom: map[string]value.Domain{
			"wire":   value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))},
			"input":  msgs,
			"output": msgs,
		},
		DefaultDom: msgs,
	}
	if verbose {
		c.Log = func(s string) { fmt.Println("   ", s) }
	}
	return c
}

func copierGroup() []namedProof {
	return []namedProof{
		{"STOP sat wire<=input (emptiness, §2.1(4))", proofs.StopSatExample()},
		{"copier sat wire<=input (§2.1(6),(10))", proofs.CopierProof()},
		{"recopier sat output<=wire", proofs.RecopierProof()},
		{"copysys sat output<=input (§2.1(8),(9))", proofs.CopyNetworkProof()},
	}
}

func protocolGroup() []namedProof {
	return []namedProof{
		{"sender sat f(wire)<=input (Table 1)", proofs.SenderTable1Proof()},
		{"receiver sat output<=f(wire) (§2.2(2), the exercise)", proofs.ReceiverProof()},
		{"protocol sat output<=input (§2.2(3))", proofs.ProtocolProof()},
	}
}

func copierCrossChecks() []crossCheck {
	env := sem.NewEnv(paper.CopySystem(), 2)
	ck := check.New(env, nil, 7)
	return []crossCheck{
		{"copier", ck, syntax.Ref{Name: paper.NameCopier}, paper.CopierSat()},
		{"recopier", ck, syntax.Ref{Name: paper.NameRecopier}, paper.RecopierSat()},
		{"copysys", ck, syntax.Ref{Name: paper.NameCopySys}, paper.CopyNetSat()},
	}
}

func protocolCrossChecks() []crossCheck {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	ck := check.New(env, nil, 7)
	return []crossCheck{
		{"sender", ck, syntax.Ref{Name: paper.NameSender}, paper.SenderSat()},
		{"receiver", ck, syntax.Ref{Name: paper.NameReceiver}, paper.ReceiverSat()},
		{"protocol", ck, syntax.Ref{Name: paper.NameProtocol}, paper.ProtocolSat()},
	}
}

var showSteps bool

func runGroup(title string, checker *proof.Checker, group []namedProof, crosses []crossCheck) bool {
	fmt.Printf("== %s ==\n", title)
	ok := true
	for _, np := range group {
		var steps []proof.Step
		if showSteps {
			checker.Steps = &steps
		}
		cl, err := checker.Check(np.p)
		if err != nil {
			fmt.Printf("FAIL %s\n     %v\n", np.name, err)
			ok = false
			continue
		}
		fmt.Printf("ok   %-55s ⊢ %s\n", np.name, cl)
		if showSteps {
			_ = proof.Render(os.Stdout, steps)
			fmt.Println()
		}
	}
	for _, cc := range crosses {
		res, err := cc.ck.Sat(cc.proc, cc.claim)
		if err != nil {
			fmt.Printf("FAIL model-check %s: %v\n", cc.name, err)
			ok = false
			continue
		}
		if !res.OK {
			fmt.Printf("FAIL model-check %s: %s\n", cc.name, res)
			ok = false
			continue
		}
		fmt.Printf("ok   model-check %-43s (%d traces, depth %d)\n", cc.name, res.TracesChecked, res.Depth)
	}
	return ok
}
