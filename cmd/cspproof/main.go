// Command cspproof replays the machine-encoded proofs from the paper —
// §2.1's copier examples, Table 1's sender proof, the §2.2 receiver
// exercise, and the six-step protocol proof — through the proof checker,
// printing each verified rule application. It then cross-checks every
// conclusion with the model checker.
//
// Usage:
//
//	cspproof [-which all|copier|protocol] [-v] [-show] [-workers N] [-timeout D] [-stats]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"cspsat/internal/assertion"
	"cspsat/internal/cli"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/proofs"
	"cspsat/internal/syntax"
	"cspsat/internal/value"
	"cspsat/pkg/csp"
)

func main() {
	app := cli.New("cspproof", "cspproof [-which all|copier|protocol] [-v] [-show] [-workers N] [-timeout D] [-stats]")
	which := flag.String("which", "all", "proof group to replay: all, copier, protocol")
	verbose := flag.Bool("v", false, "print every verified rule application")
	show := flag.Bool("show", false, "render each proof in the paper's Table-1 style")
	app.Parse(0)
	ctx, cancel := app.Context()
	defer cancel()

	ok := true
	if *which == "all" || *which == "copier" {
		ok = runGroup(ctx, app, copierGroup(), *verbose, *show) && ok
	}
	if *which == "all" || *which == "protocol" {
		ok = runGroup(ctx, app, protocolGroup(), *verbose, *show) && ok
	}
	app.Finish()
	if !ok {
		os.Exit(1)
	}
}

type namedProof struct {
	name string
	p    proof.Proof
}

type crossCheck struct {
	name  string
	proc  csp.Proc
	claim csp.Assertion
}

// group bundles one paper system's proofs: the module they are checked
// against, the validity configuration bounding pure side conditions, the
// proof objects, and the model checks cross-validating each conclusion.
type group struct {
	title    string
	mod      *csp.Module
	validity assertion.ValidityConfig
	proofs   []namedProof
	crosses  []crossCheck
}

func copierGroup() group {
	return group{
		title:    "copier system",
		mod:      csp.FromModule(paper.CopySystem(), csp.Options{NatWidth: 2}),
		validity: assertion.ValidityConfig{MaxLen: 3},
		proofs: []namedProof{
			{"STOP sat wire<=input (emptiness, §2.1(4))", proofs.StopSatExample()},
			{"copier sat wire<=input (§2.1(6),(10))", proofs.CopierProof()},
			{"recopier sat output<=wire", proofs.RecopierProof()},
			{"copysys sat output<=input (§2.1(8),(9))", proofs.CopyNetworkProof()},
		},
		crosses: []crossCheck{
			{"copier", ref(paper.NameCopier), paper.CopierSat()},
			{"recopier", ref(paper.NameRecopier), paper.RecopierSat()},
			{"copysys", ref(paper.NameCopySys), paper.CopyNetSat()},
		},
	}
}

func protocolGroup() group {
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	return group{
		title: "protocol",
		mod:   csp.FromModule(paper.ProtocolSystem(2), csp.Options{NatWidth: 2}),
		validity: assertion.ValidityConfig{
			MaxLen: 3,
			ChanDom: map[string]value.Domain{
				"wire":   value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))},
				"input":  msgs,
				"output": msgs,
			},
			DefaultDom: msgs,
		},
		proofs: []namedProof{
			{"sender sat f(wire)<=input (Table 1)", proofs.SenderTable1Proof()},
			{"receiver sat output<=f(wire) (§2.2(2), the exercise)", proofs.ReceiverProof()},
			{"protocol sat output<=input (§2.2(3))", proofs.ProtocolProof()},
		},
		crosses: []crossCheck{
			{"sender", ref(paper.NameSender), paper.SenderSat()},
			{"receiver", ref(paper.NameReceiver), paper.ReceiverSat()},
			{"protocol", ref(paper.NameProtocol), paper.ProtocolSat()},
		},
	}
}

func ref(name string) csp.Proc { return syntax.Ref{Name: name} }

func runGroup(ctx context.Context, app *cli.App, g group, verbose, show bool) bool {
	fmt.Printf("== %s ==\n", g.title)
	copts := csp.CheckOptions{Workers: app.Workers, Validity: &g.validity}
	ok := true
	if verbose || show {
		// Sequential replay: rule logging and step collection need the
		// per-checker Log/Steps hooks, which a batch fork clears.
		checker := g.mod.Prover(ctx, copts)
		if verbose {
			checker.Log = func(s string) { fmt.Println("   ", s) }
		}
		for _, np := range g.proofs {
			var steps []proof.Step
			if show {
				checker.Steps = &steps
			}
			cl, err := checker.Check(np.p)
			if err != nil {
				fmt.Printf("FAIL %s\n     %v\n", np.name, err)
				ok = false
				continue
			}
			fmt.Printf("ok   %-55s ⊢ %s\n", np.name, cl)
			if show {
				_ = proof.Render(os.Stdout, steps)
				fmt.Println()
			}
		}
	} else {
		// The proofs are independent: verify them as one batch across the
		// worker pool, reporting in input order.
		obs := make([]csp.Obligation, len(g.proofs))
		for i, np := range g.proofs {
			obs[i] = csp.Obligation{Name: np.name, Proof: np.p}
		}
		results, _ := g.mod.CheckBatch(ctx, obs, copts)
		for _, r := range results {
			if r.Err != nil {
				fmt.Printf("FAIL %s\n     %v\n", r.Name, r.Err)
				ok = false
				continue
			}
			fmt.Printf("ok   %-55s ⊢ %s\n", r.Name, r.Claim)
		}
	}
	mopts := csp.CheckOptions{Depth: 7, Workers: app.Workers}
	for _, cc := range g.crosses {
		res, err := g.mod.Sat(ctx, cc.proc, cc.claim, mopts)
		if err != nil {
			fmt.Printf("FAIL model-check %s: %v\n", cc.name, err)
			ok = false
			continue
		}
		if !res.OK {
			fmt.Printf("FAIL model-check %s: %s\n", cc.name, res)
			ok = false
			continue
		}
		fmt.Printf("ok   model-check %-43s (%d traces, depth %d)\n", cc.name, res.TracesChecked, res.Depth)
	}
	return ok
}
