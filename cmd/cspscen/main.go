// Command cspscen is the scenario conformance harness: it loads YAML
// scenario files (spec, engines, model, bounds, expectations), executes
// them through pkg/csp, and diffs the results against committed golden
// artifacts — the regression net that pins every engine's observable
// behaviour file by file.
//
//	cspscen run specs/scenarios          execute and diff against goldens
//	cspscen bless specs/scenarios        re-run and rewrite the goldens
//	cspscen gen -seed 1 -count 200 -out specs/scenarios/gen
//	                                     regenerate the random corpus
//	cspscen replay JOURNAL -addr URL     re-issue a cspserved request
//	                                     journal, verify byte-identical
//	                                     responses (see cspserved -journal)
//
// run and bless accept scenario files or directories (searched
// recursively for *.yaml); each file's golden sits next to it as
// <name>.golden.json. replay proves restart determinism: record a
// workload with cspserved -journal, restart the server over the same
// store, and every journaled exchange must reproduce its status and
// normalized response digest (internal/journal documents the volatile
// fields the normalization forgives).
//
// Exit status: 0 on full conformance, 1 when any scenario diverges
// (expectation failure, golden drift, replay mismatch), 2 on usage or
// infrastructure errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"cspsat/internal/cli"
	"cspsat/internal/scenario"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cspscen run   [-v] [-timeout D] <file-or-dir>...
  cspscen bless [-v] [-timeout D] <file-or-dir>...
  cspscen gen   [-seed N] [-count M] [-per-file K] -out DIR
  cspscen replay [-addr URL] [-timeout D] JOURNAL`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cspscen:", err)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "run":
		runCmd(args, false)
	case "bless":
		runCmd(args, true)
	case "gen":
		genCmd(args)
	case "replay":
		replayCmd(args)
	default:
		usage()
	}
}

// runCmd executes every scenario under the given paths. With bless it
// rewrites the golden files instead of diffing against them; scenario
// expectation failures are conformance failures either way.
func runCmd(args []string, bless bool) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print every scenario, not only failures")
	timeout := fs.Duration("timeout", 2*time.Minute, "budget for the whole run")
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}

	ctx, cancel := cli.SignalContext(context.Background(), *timeout)
	defer cancel()

	var files []string
	for _, path := range fs.Args() {
		fl, err := scenario.Files(path)
		if err != nil {
			fatal(err)
		}
		files = append(files, fl...)
	}

	totalScenarios, totalProblems := 0, 0
	for _, file := range files {
		scenarios, err := scenario.LoadFile(file)
		if err != nil {
			fatal(err)
		}
		var problems []string
		artifacts := make([]scenario.Artifact, 0, len(scenarios))
		for i := range scenarios {
			out, err := scenario.Run(ctx, &scenarios[i])
			if err != nil {
				fatal(fmt.Errorf("%s: scenario %q: %w", file, scenarios[i].Name, err))
			}
			for _, p := range out.Problems {
				problems = append(problems, fmt.Sprintf("%s: %s", scenarios[i].Name, p))
			}
			artifacts = append(artifacts, out.Artifact)
			if *verbose {
				fmt.Printf("  %s: ok=%v (%d problems)\n", scenarios[i].Name, out.Artifact.OK, len(out.Problems))
			}
		}
		golden := scenario.GoldenPath(file)
		if bless {
			if err := scenario.WriteGolden(golden, artifacts); err != nil {
				fatal(err)
			}
		} else {
			gp, err := scenario.CompareGolden(golden, artifacts)
			if err != nil {
				fatal(err)
			}
			problems = append(problems, gp...)
		}
		totalScenarios += len(scenarios)
		totalProblems += len(problems)
		status := "ok"
		if bless {
			status = "blessed"
		}
		if len(problems) > 0 {
			status = fmt.Sprintf("%d PROBLEMS", len(problems))
		}
		fmt.Printf("%s: %d scenarios, %s\n", file, len(scenarios), status)
		for _, p := range problems {
			fmt.Printf("  FAIL %s\n", p)
		}
	}
	verb := "conforming"
	if bless {
		verb = "blessed"
	}
	fmt.Printf("cspscen: %d scenarios across %d files, %d problems, %s\n",
		totalScenarios, len(files), totalProblems, verb)
	if totalProblems > 0 {
		os.Exit(1)
	}
}

// genCmd regenerates the deterministic corpus. The output directory is
// created; stale gen-*.yaml files beyond the regenerated set are
// removed so shrinking the count never leaves orphans behind.
func genCmd(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "corpus seed")
	count := fs.Int("count", 200, "how many scenarios to generate")
	perFile := fs.Int("per-file", 25, "scenarios per YAML file")
	out := fs.String("out", "", "output directory (required)")
	_ = fs.Parse(args)
	if *out == "" || fs.NArg() != 0 {
		usage()
	}
	files, skipped, err := scenario.GenerateCorpus(scenario.GenConfig{Seed: *seed, Count: *count, PerFile: *perFile})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	fresh := map[string]bool{}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(*out, f.Name), f.Data, 0o644); err != nil {
			fatal(err)
		}
		fresh[f.Name] = true
	}
	stale, err := filepath.Glob(filepath.Join(*out, "gen-*.yaml"))
	if err != nil {
		fatal(err)
	}
	removed := 0
	for _, path := range stale {
		if fresh[filepath.Base(path)] {
			continue
		}
		_ = os.Remove(path)
		_ = os.Remove(scenario.GoldenPath(path))
		removed++
	}
	fmt.Printf("cspscen: generated %d scenarios into %d files under %s (%d unloadable draws skipped, %d stale files removed)\n",
		*count, len(files), *out, skipped, removed)
	fmt.Println("cspscen: run `cspscen bless` over the directory to create the goldens")
}

// replayCmd re-issues a journal against a live server.
func replayCmd(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8777", "base URL of the server to replay against")
	timeout := fs.Duration("timeout", 2*time.Minute, "budget for the whole replay")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	journalPath := fs.Arg(0)

	ctx, cancel := cli.SignalContext(context.Background(), *timeout)
	defer cancel()
	client := &http.Client{}

	// Provenance first: a schema-skewed server makes digest mismatches
	// expected, so surface that before the per-record verdicts.
	version, err := fetchVersion(ctx, client, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cspscen: warning: no /v1/version from %s: %v\n", *addr, err)
	}
	res, err := scenario.Replay(ctx, journalPath, *addr, client)
	if err != nil {
		fatal(err)
	}
	for _, w := range scenario.CheckMeta(res.Meta, version) {
		fmt.Fprintf(os.Stderr, "cspscen: warning: %s\n", w)
	}
	report(res)
}

func report(res *scenario.ReplayResult) {
	if res.Torn {
		fmt.Fprintln(os.Stderr, "cspscen: warning: journal ends in a torn record; replaying the valid prefix")
	}
	for _, m := range res.Mismatches {
		fmt.Printf("  MISMATCH %s\n", m)
	}
	fmt.Printf("cspscen: replayed %d records, %d mismatches\n", res.Records, len(res.Mismatches))
	if !res.OK() {
		os.Exit(1)
	}
}

func fetchVersion(ctx context.Context, client *http.Client, base string) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/version", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
