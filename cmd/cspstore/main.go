// Command cspstore operates an on-disk artifact store — the directory
// cspserved's -store flag (and the CLI tools') persists compiled modules
// into. It never runs an engine; it reads, validates, and deletes the
// content-addressed .cspa files directly.
//
//	cspstore -store DIR ls                 list artifacts with arena sizes and result counts
//	cspstore -store DIR verify [key...]    decode + validate each artifact, report corruption
//	cspstore -store DIR gc                 remove quarantined files and temp droppings
//	cspstore -store DIR rm key...          delete artifacts by key
//
// verify decodes every byte of each artifact — checksum, version, and the
// frozen arena's structural validation (offsets, bounds, edge order, size
// consistency) — exactly the validation a cspserved warm boot performs,
// without interning a single symbol or trie node; with -thaw it
// additionally rebuilds the trie graph through the interner, proving the
// arena thaws cleanly. With -quarantine, bad artifacts are renamed to
// <key>.cspa.corrupt so the next warm boot skips them without re-reading.
//
// Exit status 1 when verify finds a bad artifact, 2 on usage errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"cspsat/internal/store"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cspstore -store DIR [-quarantine] <ls|verify|gc|rm> [key...]")
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cspstore:", err)
	os.Exit(2)
}

func main() {
	dir := flag.String("store", "", "artifact store directory (required)")
	quarantine := flag.Bool("quarantine", false, "verify: rename bad artifacts to <key>.cspa.corrupt")
	thaw := flag.Bool("thaw", false, "verify: additionally rebuild each trie graph through the interner")
	flag.Usage = usage
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		usage()
	}
	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}

	cmd, keys := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "ls":
		if len(keys) != 0 {
			usage()
		}
		ls(st)
	case "verify":
		if !verify(st, keys, *quarantine, *thaw) {
			os.Exit(1)
		}
	case "gc":
		if len(keys) != 0 {
			usage()
		}
		removed, bytes, err := st.GC()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gc: removed %d files, reclaimed %d bytes\n", removed, bytes)
	case "rm":
		if len(keys) == 0 {
			usage()
		}
		for _, key := range keys {
			if err := st.Delete(key); err != nil {
				fatal(err)
			}
		}
	default:
		usage()
	}
}

// allKeys resolves an explicit key list, defaulting to every artifact in
// the store.
func allKeys(st *store.Store, keys []string) []string {
	if len(keys) != 0 {
		return keys
	}
	all, err := st.Keys()
	if err != nil {
		fatal(err)
	}
	return all
}

func ls(st *store.Store) {
	for _, key := range allKeys(st, nil) {
		size, err := st.Size(key)
		if err != nil {
			fmt.Printf("%s  (stat: %v)\n", key, err)
			continue
		}
		a, _, err := st.Get(key)
		if err != nil {
			fmt.Printf("%s  %8d bytes  UNREADABLE: %v\n", key, size, err)
			continue
		}
		fmt.Printf("%s  %8d bytes  %s  nat=%d  arena %d B (%d nodes, %d edges)  %d trace roots  %d checks  %d proofs  %d refinements\n",
			key, size, time.Unix(a.CreatedUnix, 0).UTC().Format("2006-01-02 15:04"),
			a.NatWidth, len(a.Arena.Bytes()), a.Arena.NumNodes(), a.Arena.NumEdges(),
			len(a.TraceRoots), len(a.Checks), len(a.Proves), len(a.Refinements))
	}
}

// verify fully validates each artifact — decode covers the checksum, the
// version word, and the arena's structural checks, all without interning —
// and reports per key. With thaw it also rebuilds the trie graph through
// the interner. It returns false when any artifact is bad.
func verify(st *store.Store, keys []string, quarantine, thaw bool) bool {
	ok := true
	for _, key := range allKeys(st, keys) {
		a, n, err := st.Get(key)
		if err == nil && thaw {
			_, err = a.Sets()
		}
		switch {
		case err == nil:
			fmt.Printf("ok       %s  (%d bytes)\n", key, n)
		case errors.Is(err, store.ErrNotFound):
			ok = false
			fmt.Printf("missing  %s\n", key)
		default:
			ok = false
			kind := "corrupt"
			if errors.Is(err, store.ErrVersionSkew) {
				kind = "version"
			}
			fmt.Printf("%-8s %s  %v\n", kind, key, err)
			if quarantine {
				if qerr := st.Quarantine(key); qerr != nil {
					fmt.Fprintln(os.Stderr, "cspstore:", qerr)
				} else {
					fmt.Printf("         %s quarantined\n", key)
				}
			}
		}
	}
	return ok
}
