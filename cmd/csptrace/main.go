// Command csptrace enumerates the visible traces of a process defined in a
// .csp file, up to a depth bound — the paper's prefix-closed trace set,
// computed by the operational engine. With -den it uses the literal
// denotational semantics (the §3.3 approximation chain) instead and also
// reports how many chain iterations were needed.
//
// With -store DIR the run shares cspserved's artifact store: a trace set
// already persisted for this exact source, engine, depth, and process is
// served from disk without parsing or running an engine, and a freshly
// computed one is persisted for the next reader.
//
// Usage:
//
//	csptrace [-depth N] [-nat W] [-max] [-den] [-dot] [-store DIR] [-workers N] [-timeout D] [-stats] file.csp process
package main

import (
	"flag"
	"fmt"

	"cspsat/internal/cli"
	"cspsat/pkg/csp"
)

func main() {
	app := cli.New("csptrace", "csptrace [-depth N] [-nat W] [-max] [-den] [-dot] [-store DIR] [-workers N] [-timeout D] [-stats] file.csp process")
	app.NatFlag(3)
	app.StoreFlag()
	depth := flag.Int("depth", 6, "trace-length bound")
	maxOnly := flag.Bool("max", false, "print only maximal traces")
	den := flag.Bool("den", false, "use the denotational engine (§3.3 approximation chain)")
	dot := flag.Bool("dot", false, "emit the bounded LTS as a Graphviz digraph instead of traces")
	args := app.Parse(2)
	ctx, cancel := app.Context()
	defer cancel()

	mod := app.Load(ctx, args[0])
	if *dot {
		g, err := mod.DotLTS(app.Proc(mod, args[1]), *depth)
		if err != nil {
			app.Fail(err)
		}
		fmt.Print(g)
		return
	}
	engine := csp.EngineOp
	if *den {
		engine = csp.EngineDenote
	}
	// A persisted trace set for this engine/depth/process serves the run
	// without resolving the process — i.e. without parsing the module at
	// all when the whole load came from the store.
	res, hit := mod.CachedTraces(engine, *depth, args[1])
	if !hit {
		var err error
		res, err = mod.Traces(ctx, app.Proc(mod, args[1]), csp.EngineOptions{Engine: engine, Depth: *depth, Workers: app.Workers})
		if err != nil {
			app.Fail(err)
		}
		mod.StoreTraces(engine, *depth, args[1], res)
	}
	if *den {
		fmt.Printf("-- approximation chain stabilised after %d iterations\n", res.Iterations)
	}
	traces := res.Set.Traces()
	if *maxOnly {
		traces = res.Set.TracesMax()
	}
	for _, t := range traces {
		fmt.Println(t)
	}
	fmt.Printf("-- %d traces (of %d total, max length %d)\n", len(traces), res.Set.Size(), res.Set.MaxLen())
	app.Finish()
}
