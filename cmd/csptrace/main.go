// Command csptrace enumerates the visible behaviours of a process defined
// in a .csp file, up to a depth bound. Under the default traces model that
// is the paper's prefix-closed trace set; with -model failures it is the
// §4 stable-failures model instead — one line per trace listing the
// acceptance sets of the stable states reachable on it, where an empty
// acceptance is a deadlock.
//
// The -engine flag picks how trace sets are computed: op (the operational
// explorer, default), denote (the literal §3.3 approximation chain, which
// also reports its iteration count), or runtime (the prefix closure of one
// random goroutine walk). The older -den spelling remains as a deprecated
// alias for -engine denote.
//
// With -store DIR the run shares cspserved's artifact store: a trace set
// already persisted for this exact source, engine, depth, and process is
// served from disk without parsing or running an engine, and a freshly
// computed one is persisted for the next reader.
//
// Usage:
//
//	csptrace [-depth N] [-nat W] [-model M] [-engine E] [-max] [-dot] [-store DIR] [-workers N] [-timeout D] [-stats] file.csp process
package main

import (
	"flag"
	"fmt"

	"cspsat/internal/cli"
	"cspsat/pkg/csp"
)

func main() {
	app := cli.New("csptrace", "csptrace [-depth N] [-nat W] [-model M] [-engine E] [-max] [-dot] [-store DIR] [-workers N] [-timeout D] [-stats] file.csp process")
	app.NatFlag(3)
	app.StoreFlag()
	app.ModelFlag()
	app.EngineFlag("op")
	depth := flag.Int("depth", 6, "trace-length bound")
	maxOnly := flag.Bool("max", false, "print only maximal traces")
	den := flag.Bool("den", false, "use the denotational engine (deprecated: use -engine denote)")
	dot := flag.Bool("dot", false, "emit the bounded LTS as a Graphviz digraph instead of traces")
	args := app.Parse(2)
	mdl := app.Model()
	engine := app.Engine()
	if *den {
		engine = csp.EngineDenote
	}
	ctx, cancel := app.Context()
	defer cancel()

	mod := app.Load(ctx, args[0])
	if *dot {
		g, err := mod.DotLTS(app.Proc(mod, args[1]), *depth)
		if err != nil {
			app.Fail(err)
		}
		fmt.Print(g)
		return
	}
	if mdl == csp.ModelFailures {
		fm, err := mod.Failures(ctx, app.Proc(mod, args[1]), csp.EngineOptions{Depth: *depth})
		if err != nil {
			app.Fail(err)
		}
		fmt.Print(fm)
		fmt.Printf("-- %d traces with acceptance families (failures model, depth %d)\n", len(fm.Traces()), *depth)
		app.Finish()
		return
	}
	// A persisted trace set for this engine/depth/process serves the run
	// without resolving the process — i.e. without parsing the module at
	// all when the whole load came from the store.
	res, hit := mod.CachedTraces(engine, *depth, args[1])
	if !hit {
		var err error
		res, err = mod.Traces(ctx, app.Proc(mod, args[1]), csp.EngineOptions{Engine: engine, Depth: *depth, Workers: app.Workers})
		if err != nil {
			app.Fail(err)
		}
		mod.StoreTraces(engine, *depth, args[1], res)
	}
	if engine == csp.EngineDenote {
		fmt.Printf("-- approximation chain stabilised after %d iterations\n", res.Iterations)
	}
	// View, not Set: a store-served result lists straight off the frozen
	// arena image without rebuilding the trie.
	view := res.View()
	traces := view.Traces()
	if *maxOnly {
		traces = view.TracesMax()
	}
	for _, t := range traces {
		fmt.Println(t)
	}
	fmt.Printf("-- %d traces (of %d total, max length %d)\n", len(traces), view.Size(), view.MaxLen())
	app.Finish()
}
