// Command csptrace enumerates the visible traces of a process defined in a
// .csp file, up to a depth bound — the paper's prefix-closed trace set,
// computed by the operational engine. With -den it uses the literal
// denotational semantics (the §3.3 approximation chain) instead and also
// reports how many chain iterations were needed.
//
// Usage:
//
//	csptrace [-depth N] [-nat W] [-max] [-den] file.csp process
package main

import (
	"flag"
	"fmt"
	"os"

	"cspsat/internal/core"
	"cspsat/internal/op"
	"cspsat/internal/sem"
)

func main() {
	depth := flag.Int("depth", 6, "trace-length bound")
	nat := flag.Int("nat", 3, "enumeration width of the NAT domain")
	maxOnly := flag.Bool("max", false, "print only maximal traces")
	den := flag.Bool("den", false, "use the denotational engine (§3.3 approximation chain)")
	dot := flag.Bool("dot", false, "emit the bounded LTS as a Graphviz digraph instead of traces")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csptrace [-depth N] [-nat W] [-max] [-den] [-dot] file.csp process\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	sys, err := core.LoadFile(flag.Arg(0), core.Options{NatWidth: *nat})
	if err != nil {
		fmt.Fprintln(os.Stderr, "csptrace:", err)
		os.Exit(2)
	}
	p, err := sys.Proc(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "csptrace:", err)
		os.Exit(2)
	}
	if *dot {
		g, err := op.DotLTS(op.NewState(p, sys.Env()), *depth)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csptrace:", err)
			os.Exit(1)
		}
		fmt.Print(g)
		return
	}
	set, err := sys.Traces(p, *depth)
	if *den {
		d := sem.NewDenoter(*depth)
		set, err = d.Denote(p, sys.Env())
		if err == nil {
			fmt.Printf("-- approximation chain stabilised after %d iterations\n", d.Iterations())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csptrace:", err)
		os.Exit(1)
	}
	traces := set.Traces()
	if *maxOnly {
		traces = set.TracesMax()
	}
	for _, t := range traces {
		fmt.Println(t)
	}
	fmt.Printf("-- %d traces (of %d total, max length %d)\n", len(traces), set.Size(), set.MaxLen())
}
