// Command cspserved is the long-running HTTP verification service: the
// engines behind cspcheck/csptrace/cspprove, resident, with a module
// cache that amortises the hash-consed intern tables across requests.
//
//	cspserved -addr 127.0.0.1:8777
//	curl -s localhost:8777/v1/check -d '{"source": "p = a!1 -> p\nassert p sat 0 <= #a\n"}'
//
// Endpoints: POST /v1/traces, /v1/check, /v1/prove, /v1/batch; GET
// /metrics, /healthz, /readyz; /debug/pprof. See internal/server for the
// wire contract.
//
// With -store DIR the module cache persists compiled modules and their
// results to an on-disk content-addressed artifact store: a restart warm
// boots from DIR instead of recomputing (during which /readyz answers 503
// "starting" while /healthz stays live), and corrupt or stale artifacts
// are quarantined, logged, and recomputed — never fatal. cmd/cspstore
// operates the same directory offline.
//
// The uniform flags keep their CLI meaning where one exists: -timeout is
// the per-request engine budget (not the process lifetime), -workers the
// default per-request engine parallelism, -nat the default NAT width,
// -stats a closure-cache report on exit. SIGINT/SIGTERM starts a graceful
// drain: new requests are refused with 503 while in-flight checks finish,
// up to -drain, after which the engines are hard-canceled (the intern
// shards stay valid under cancellation, so a forced abort loses only the
// aborted requests' work).
//
// With -journal DIR every deterministic /v1/* request is appended to a
// checksummed journal file (one per run) together with a digest of the
// response; `cspscen replay JOURNAL -addr URL` re-issues the recorded
// workload against a restarted server and verifies the responses
// reproduce byte-identically (modulo the documented timing fields — see
// internal/journal). GET /v1/version reports the wire schema, store codec
// version, and build info that stamp such journals.
//
// Usage:
//
//	cspserved [-addr HOST:PORT] [-depth N] [-nat W] [-workers N]
//	          [-timeout D] [-max-inflight N] [-drain D] [-cache N]
//	          [-store DIR] [-journal DIR] [-stats]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"cspsat/internal/cli"
	"cspsat/internal/server"
)

func main() {
	app := cli.New("cspserved",
		"cspserved [-addr HOST:PORT] [-depth N] [-nat W] [-workers N] [-timeout D] [-max-inflight N] [-drain D] [-cache N] [-store DIR] [-journal DIR] [-stats]")
	app.NatFlag(3)
	addr := flag.String("addr", "127.0.0.1:8777", "listen address")
	depth := flag.Int("depth", 8, "default trace-length bound for requests that send none")
	maxInflight := flag.Int("max-inflight", 0, "admission limit on concurrently served requests (0 = 2×GOMAXPROCS)")
	drain := flag.Duration("drain", 15*time.Second, "how long a shutdown waits for in-flight requests before hard-canceling them")
	cacheCap := flag.Int("cache", 0, "module cache capacity in specs (0 = default)")
	storeDir := flag.String("store", "", "artifact store directory for persistent warm starts (empty = no persistence)")
	journalDir := flag.String("journal", "", "directory for the append-only request journal (empty = no recording); replay with cspscen replay")
	app.Parse(0)

	reqTimeout := app.Timeout
	if reqTimeout <= 0 {
		reqTimeout = 30 * time.Second
	}
	srv := server.New(server.Config{
		Depth:          *depth,
		NatWidth:       app.Nat,
		Workers:        app.Workers,
		RequestTimeout: reqTimeout,
		MaxInflight:    *maxInflight,
		CacheCapacity:  *cacheCap,
		StoreDir:       *storeDir,
		JournalDir:     *journalDir,
		Logf:           log.Printf,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The lifecycle context carries no deadline of its own — -timeout is
	// per-request here — but keeps the CLI layer's signal wiring: first
	// SIGINT/SIGTERM starts the drain, a second one kills the process.
	ctx, cancel := cli.SignalContext(context.Background(), 0)
	defer cancel()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		app.Fatal(err)
	}
	fmt.Printf("cspserved: listening on http://%s (request budget %v, drain %v)\n",
		ln.Addr(), reqTimeout, *drain)

	// Warm boot in the background: the listener is already accepting (so
	// /healthz answers immediately) but /readyz reports "starting" until
	// every stored artifact has been rehydrated or skipped.
	go srv.WarmBoot(ctx)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		app.Fail(err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "cspserved: %v; draining in-flight requests (up to %v)\n",
		context.Cause(ctx), *drain)
	srv.BeginDrain()
	sctx, stop := context.WithTimeout(context.Background(), *drain)
	defer stop()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cspserved: drain deadline exceeded; hard-canceling in-flight requests")
		srv.Abort()
		_ = httpSrv.Close()
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cspserved: closing journal: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "cspserved: drained, exiting")
	app.Finish()
}
