// E19 (DESIGN.md §3.5): a cspserved warm boot from the artifact store must
// beat cold compilation of the same workload by a wide margin, because a
// store hit skips parsing and denotation entirely — it re-interns the
// persisted trie graphs bottom-up and serves trace sets from the rehydrated
// results cache. The cold/warm sub-benchmarks run the identical workload:
// all six specs/ files, each with its smoke-test process and depth.
package cspsat_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"cspsat/pkg/csp"
)

// storeSpecs is the serve_smoke.sh workload: every committed spec with the
// process and depth the smoke scripts exercise.
var storeSpecs = []struct {
	file  string
	proc  string
	depth int
}{
	{"copier", "copier", 6},
	{"protocol", "protocol", 6},
	{"multiplier", "multiplier", 4},
	{"buffers", "buf1", 6},
	{"philosophers", "safe", 6},
	{"tokenring", "sys", 6},
}

func readSpecSource(b *testing.B, name string) string {
	b.Helper()
	data, err := os.ReadFile(filepath.Join("specs", name+".csp"))
	if err != nil {
		b.Fatal(err)
	}
	return string(data)
}

func BenchmarkE19WarmBootFromStore(b *testing.B) {
	ctx := context.Background()
	sources := make([]string, len(storeSpecs))
	for i, s := range storeSpecs {
		sources[i] = readSpecSource(b, s.file)
	}

	// Populate the store once: compile each spec and persist its trace set,
	// exactly what a serving cspserved leaves behind.
	dir := b.TempDir()
	st, err := csp.OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	seed := csp.NewModuleCache(0)
	seed.SetStore(st, nil)
	for i, s := range storeSpecs {
		mod, _, _, err := seed.Load(ctx, sources[i], csp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		p, err := mod.Proc(s.proc)
		if err != nil {
			b.Fatal(err)
		}
		res, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: csp.EngineOp, Depth: s.depth})
		if err != nil {
			b.Fatal(err)
		}
		mod.StoreTraces(csp.EngineOp, s.depth, s.proc, res)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.ResetCaches()
			for j, s := range storeSpecs {
				mod, err := csp.Load(ctx, sources[j], csp.Options{})
				if err != nil {
					b.Fatal(err)
				}
				p, err := mod.Proc(s.proc)
				if err != nil {
					b.Fatal(err)
				}
				res, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: csp.EngineOp, Depth: s.depth})
				if err != nil {
					b.Fatal(err)
				}
				if res.Set.Size() == 0 {
					b.Fatal("empty trace set")
				}
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.ResetCaches()
			cache := csp.NewModuleCache(0)
			cache.SetStore(st, nil)
			if loaded, _, err := cache.WarmBoot(ctx); err != nil || loaded != len(storeSpecs) {
				b.Fatalf("warm boot: loaded=%d err=%v", loaded, err)
			}
			for j, s := range storeSpecs {
				mod, _, hit, err := cache.Load(ctx, sources[j], csp.Options{})
				if err != nil || !hit {
					b.Fatalf("%s: hit=%v err=%v", s.file, hit, err)
				}
				res, ok := mod.CachedTraces(csp.EngineOp, s.depth, s.proc)
				if !ok {
					b.Fatalf("%s: no cached traces after warm boot", s.file)
				}
				if res.Set.Size() == 0 {
					b.Fatal("empty trace set")
				}
			}
		}
	})
}
