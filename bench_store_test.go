// E19 (DESIGN.md §3.5): a cspserved warm boot from the artifact store must
// beat cold compilation of the same workload by a wide margin, because a
// store hit skips parsing and denotation entirely — it re-interns the
// persisted trie graphs bottom-up and serves trace sets from the rehydrated
// results cache. The cold/warm sub-benchmarks run the identical workload:
// all six specs/ files, each with its smoke-test process and depth.
package cspsat_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"cspsat/pkg/csp"
)

// storeSpecs is the serve_smoke.sh workload: every committed spec with the
// process and depth the smoke scripts exercise.
var storeSpecs = []struct {
	file  string
	proc  string
	depth int
}{
	{"copier", "copier", 6},
	{"protocol", "protocol", 6},
	{"multiplier", "multiplier", 4},
	{"buffers", "buf1", 6},
	{"philosophers", "safe", 6},
	{"tokenring", "sys", 6},
}

func readSpecSource(b *testing.B, name string) string {
	b.Helper()
	data, err := os.ReadFile(filepath.Join("specs", name+".csp"))
	if err != nil {
		b.Fatal(err)
	}
	return string(data)
}

func BenchmarkE19WarmBootFromStore(b *testing.B) {
	ctx := context.Background()
	sources := make([]string, len(storeSpecs))
	for i, s := range storeSpecs {
		sources[i] = readSpecSource(b, s.file)
	}

	// Populate the store once: compile each spec and persist its trace set,
	// exactly what a serving cspserved leaves behind.
	dir := b.TempDir()
	st, err := csp.OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	seed := csp.NewModuleCache(0)
	seed.SetStore(st, nil)
	for i, s := range storeSpecs {
		mod, _, _, err := seed.Load(ctx, sources[i], csp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		p, err := mod.Proc(s.proc)
		if err != nil {
			b.Fatal(err)
		}
		res, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: csp.EngineOp, Depth: s.depth})
		if err != nil {
			b.Fatal(err)
		}
		mod.StoreTraces(csp.EngineOp, s.depth, s.proc, res)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.ResetCaches()
			for j, s := range storeSpecs {
				mod, err := csp.Load(ctx, sources[j], csp.Options{})
				if err != nil {
					b.Fatal(err)
				}
				p, err := mod.Proc(s.proc)
				if err != nil {
					b.Fatal(err)
				}
				res, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: csp.EngineOp, Depth: s.depth})
				if err != nil {
					b.Fatal(err)
				}
				if res.Set.Size() == 0 {
					b.Fatal("empty trace set")
				}
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.ResetCaches()
			cache := csp.NewModuleCache(0)
			cache.SetStore(st, nil)
			if loaded, _, err := cache.WarmBoot(ctx); err != nil || loaded != len(storeSpecs) {
				b.Fatalf("warm boot: loaded=%d err=%v", loaded, err)
			}
			for j, s := range storeSpecs {
				mod, _, hit, err := cache.Load(ctx, sources[j], csp.Options{})
				if err != nil || !hit {
					b.Fatalf("%s: hit=%v err=%v", s.file, hit, err)
				}
				res, ok := mod.CachedTraces(csp.EngineOp, s.depth, s.proc)
				if !ok {
					b.Fatalf("%s: no cached traces after warm boot", s.file)
				}
				if res.View().Size() == 0 {
					b.Fatal("empty trace set")
				}
			}
		}
	})
}

// sprawlSpec is a history-dependent process whose trie defeats hash
// consing: the out!s edge distinguishes every reachable accumulator
// value, so depth 13 freezes to ~8k distinct nodes. The committed
// specs intern to a few dozen nodes each — far too shared for a boot
// benchmark whose whole point is the per-node rebuild cost.
const sprawlSpec = `
hist[s:{0..4095}] = a!0 -> hist[(2*s) % 4096]
                  | b!0 -> hist[(2*s+1) % 4096]
                  | out!s -> STOP
sprawl = hist[0]
`

// e21Specs is the E21 workload: the six committed specs at serving
// depths plus the node-heavy sprawl module (inline source), together a
// ~2400-node store. E19's smoke-depth tries are so small that file I/O
// hides the rebuild cost; this workload is where the old boot
// (re-intern every node) actually hurt and the frozen boot's advantage
// is the point being measured.
var e21Specs = []struct {
	file  string // specs/ file name, "" when src is inline
	src   string
	proc  string
	depth int
}{
	{file: "copier", proc: "copier", depth: 14},
	{file: "protocol", proc: "protocol", depth: 12},
	{file: "multiplier", proc: "multiplier", depth: 6},
	{file: "buffers", proc: "buf1", depth: 12},
	{file: "philosophers", proc: "safe", depth: 9},
	{file: "tokenring", proc: "sys", depth: 10},
	{src: sprawlSpec, proc: "sprawl", depth: 13},
}

// E21 (DESIGN.md §3.8): the frozen arena makes warm-boot readiness a
// validation pass over mmap'd bytes instead of a trie rebuild. The two
// boot legs run the identical warm workload and differ in one call:
// "frozen" answers the post-boot queries straight off the frozen views,
// "thaw" forces every result through TraceSet() — re-interning the stored
// graphs exactly as the pre-arena codec did on every boot. The "reads"
// leg pins the zero-allocation contract for read-only queries against an
// already-bound frozen module.
func BenchmarkE21FrozenBoot(b *testing.B) {
	ctx := context.Background()
	sources := make([]string, len(e21Specs))
	for i, s := range e21Specs {
		if s.file != "" {
			sources[i] = readSpecSource(b, s.file)
		} else {
			sources[i] = s.src
		}
	}

	dir := b.TempDir()
	st, err := csp.OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	seed := csp.NewModuleCache(0)
	seed.SetStore(st, nil)
	for i, s := range e21Specs {
		mod, _, _, err := seed.Load(ctx, sources[i], csp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		p, err := mod.Proc(s.proc)
		if err != nil {
			b.Fatal(err)
		}
		res, err := mod.Traces(ctx, p, csp.EngineOptions{Engine: csp.EngineOp, Depth: s.depth})
		if err != nil {
			b.Fatal(err)
		}
		mod.StoreTraces(csp.EngineOp, s.depth, s.proc, res)
	}

	// boot maps every artifact and returns the cached results, one per spec.
	boot := func(b *testing.B) []*csp.TraceResult {
		cache := csp.NewModuleCache(0)
		cache.SetStore(st, nil)
		if loaded, _, err := cache.WarmBoot(ctx); err != nil || loaded != len(e21Specs) {
			b.Fatalf("warm boot: loaded=%d err=%v", loaded, err)
		}
		results := make([]*csp.TraceResult, len(e21Specs))
		for j, s := range e21Specs {
			mod, _, hit, err := cache.Load(ctx, sources[j], csp.Options{})
			if err != nil || !hit {
				b.Fatalf("%s: hit=%v err=%v", s.proc, hit, err)
			}
			res, ok := mod.CachedTraces(csp.EngineOp, s.depth, s.proc)
			if !ok {
				b.Fatalf("%s: no cached traces after warm boot", s.proc)
			}
			results[j] = res
		}
		return results
	}

	b.Run("frozen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.ResetCaches()
			for _, res := range boot(b) {
				if res.View().Size() == 0 {
					b.Fatal("empty trace set")
				}
			}
		}
	})

	b.Run("thaw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.ResetCaches()
			for _, res := range boot(b) {
				if res.TraceSet().Size() == 0 {
					b.Fatal("empty trace set")
				}
			}
		}
	})

	b.Run("reads", func(b *testing.B) {
		csp.ResetCaches()
		results := boot(b)
		views := make([]csp.TraceView, len(results))
		probes := make([]csp.Trace, len(results))
		for j, res := range results {
			views[j] = res.View()
			tr, _ := views[j].TracesMaxN(1)
			if len(tr) == 0 {
				b.Fatalf("%s: no maximal trace", e21Specs[j].proc)
			}
			probes[j] = tr[0]
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, v := range views {
				if v.Size() == 0 || v.MaxLen() == 0 || !v.Contains(probes[j]) {
					b.Fatal("frozen read lied")
				}
			}
		}
	})
}
