module cspsat

go 1.22
