// Protocol: the paper's §1.3(2)-(4) ACK/NACK retransmission protocol, taken
// through all three layers of the library:
//
//  1. the machine-checked §2.2 proofs (Table 1, the exercise, and the
//     six-step network proof),
//  2. exhaustive model checking of the same claims, and
//  3. concurrent execution with the invariant monitored online.
package main

import (
	"fmt"
	"log"

	"cspsat/internal/assertion"
	"cspsat/internal/core"
	"cspsat/internal/paper"
	"cspsat/internal/proof"
	"cspsat/internal/proofs"
	"cspsat/internal/value"
)

func main() {
	sys, err := core.Load(paper.ProtocolSpec, core.Options{NatWidth: 2})
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Machine-checked proofs (the paper's §2.2) ---
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	validity := &assertion.ValidityConfig{
		MaxLen: 3,
		ChanDom: map[string]value.Domain{
			"wire":   value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))},
			"input":  msgs,
			"output": msgs,
		},
		DefaultDom: msgs,
	}
	prover := sys.Prover(validity)
	for _, pr := range []struct {
		title string
		p     proof.Proof
	}{
		{"Table 1: sender sat f(wire) <= input", proofs.SenderTable1Proof()},
		{"exercise: receiver sat output <= f(wire)", proofs.ReceiverProof()},
		{"six steps: protocol sat output <= input", proofs.ProtocolProof()},
	} {
		claim, err := prover.Check(pr.p)
		if err != nil {
			log.Fatalf("proof %q rejected: %v", pr.title, err)
		}
		fmt.Printf("proved   %-45s ⊢ %s\n", pr.title, claim)
	}

	// --- 2. Model checking the same claims exhaustively ---
	results, err := sys.CheckAll(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(core.FormatAssertResults(results))

	// --- 3. Concurrent execution with an online monitor ---
	run, err := sys.RunMonitored("protocol", paper.ProtocolSat(), 42, 300)
	if err != nil {
		log.Fatal(err)
	}
	if run.MonitorErr != nil {
		log.Fatalf("monitor violation: %v", run.MonitorErr)
	}
	retransmissions := 0
	for _, rec := range run.Events {
		if rec.Hidden && rec.Ev.Msg.Kind() == value.KindSym && rec.Ev.Msg.AsSym() == "NACK" {
			retransmissions++
		}
	}
	fmt.Printf("\nexecuted %d events (%d NACK retransmissions); delivered: %s\n",
		len(run.Events), retransmissions, run.Trace)
}
