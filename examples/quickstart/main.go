// Quickstart: define a process network in the paper's notation, model-check
// a sat-assertion, see a counterexample for a false one, and enumerate
// traces — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"cspsat/internal/assertion"
	"cspsat/internal/core"
)

const spec = `
-- A one-place buffer: everything output was first input.
buffer = in?x:NAT -> out!x -> buffer

assert buffer sat out <= in
assert buffer sat #in <= #out + 1
`

func main() {
	sys, err := core.Load(spec, core.Options{NatWidth: 3})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Check the assertions written in the spec.
	results, err := sys.CheckAll(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatAssertResults(results))

	// 2. A false claim produces a concrete counterexample trace.
	buffer, err := sys.Proc("buffer")
	if err != nil {
		log.Fatal(err)
	}
	wrong := assertion.PrefixLE(assertion.Chan("in"), assertion.Chan("out"))
	res, err := sys.Check(buffer, wrong, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfalse claim %q: %s\n", wrong, res)

	// 3. Enumerate the prefix-closed trace set (the paper's denotation).
	traces, err := sys.Traces(buffer, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraces of buffer up to length 3 (%d):\n", traces.Size())
	for _, t := range traces.Traces() {
		fmt.Println(" ", t)
	}

	// 4. Execute the buffer as a goroutine network with the assertion
	//    monitored online.
	run, err := sys.RunMonitored("buffer", results[0].Decl.A, 7, 20)
	if err != nil {
		log.Fatal(err)
	}
	if run.MonitorErr != nil {
		log.Fatal(run.MonitorErr)
	}
	fmt.Printf("\nexecuted %d events on goroutines, trace: %s\n", len(run.Events), run.Trace)
}
