// Multiplier: the paper's §1.3(5) systolic pipeline computing scalar
// products of matrix rows with a fixed vector v[1..3]. The example feeds a
// concrete matrix through the running goroutine network, checks every
// output against the directly computed product, and model-checks the
// paper's §2 invariant
//
//	∀i ≤ #output. outputᵢ = Σⱼ v[j]·row[j]ᵢ
package main

import (
	"fmt"
	"log"

	"cspsat/internal/core"
	"cspsat/internal/paper"
	"cspsat/internal/trace"
)

func main() {
	v := []int64{5, 3, 2}
	sys := core.FromModule(paper.MultiplierSystem(v), core.Options{NatWidth: 4})

	// --- Execute the 5-process network on goroutines ---
	run, err := sys.RunMonitored("multiplier", paper.MultiplierSat(), 11, 400)
	if err != nil {
		log.Fatal(err)
	}
	if run.MonitorErr != nil {
		log.Fatalf("monitor violation: %v", run.MonitorErr)
	}
	hist := trace.Ch(run.Trace)
	rows := [3][]int64{}
	for j := 1; j <= 3; j++ {
		for _, m := range hist.Get(trace.Sub("row", int64(j))) {
			rows[j-1] = append(rows[j-1], m.AsInt())
		}
	}
	fmt.Printf("network of %d goroutines ran %d events\n", run.LeafCount, len(run.Events))
	fmt.Printf("rows consumed: row[1]=%v row[2]=%v row[3]=%v\n", rows[0], rows[1], rows[2])
	fmt.Printf("products emitted: %v\n", hist.Get("output"))

	// Recompute each scalar product directly and compare.
	for i, out := range hist.Get("output") {
		want := v[0]*rows[0][i] + v[1]*rows[1][i] + v[2]*rows[2][i]
		status := "ok"
		if out.AsInt() != want {
			status = "MISMATCH"
		}
		fmt.Printf("  output[%d] = %d, direct computation %d  %s\n", i+1, out.AsInt(), want, status)
	}

	// --- Exhaustive model check of the invariant ---
	mult, err := sys.Proc("multiplier")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Check(mult, paper.MultiplierSat(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel check: %s\n", res)
}
