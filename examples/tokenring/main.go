// Tokenring: a four-station mutual-exclusion ring, analysed with every tool
// in the box — model checking the round-robin invariant, deadlock and
// divergence search, the failures view (the ring is deterministic), a
// Graphviz picture of its state space, and a monitored concurrent run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cspsat/internal/core"
	"cspsat/internal/failures"
	"cspsat/internal/op"
)

func main() {
	path := filepath.Join("specs", "tokenring.csp")
	if _, err := os.Stat(path); err != nil {
		path = filepath.Join("..", "..", "specs", "tokenring.csp")
	}
	sys, err := core.LoadFile(path, core.Options{NatWidth: 2})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Model-check the file's asserts (round-robin work counters).
	results, err := sys.CheckAll(9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatAssertResults(results))

	ring, err := sys.Proc("sys")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Liveness-adjacent checks the sat-framework cannot express.
	dls, err := sys.Checker(8).Deadlocks(ring)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeadlocks to depth 8: %d\n", len(dls))
	if _, div, err := failures.Diverges(ring, sys.Env(), 4); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("can diverge: %v (token passes are finite chatter between works)\n", div)
	}

	// 3. Failures view: the ring is deterministic — the environment can
	//    rely on exactly one behaviour.
	m, err := sys.Failures(ring, 6)
	if err != nil {
		log.Fatal(err)
	}
	if w := m.Deterministic(); w == nil {
		fmt.Println("the ring is deterministic in the failures sense")
	} else {
		fmt.Printf("nondeterminism: %s\n", w)
	}

	// 4. A picture: the ring's visible state space is a single cycle.
	g, err := op.DotLTS(op.NewState(ring, sys.Env()), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGraphviz of the state space (render with `dot -Tsvg`):\n%s", g)

	// 5. Run it on goroutines with the invariant monitored.
	run, err := sys.RunMonitored("sys", sys.Asserts[0].A, 3, 24)
	if err != nil {
		log.Fatal(err)
	}
	if run.MonitorErr != nil {
		log.Fatal(run.MonitorErr)
	}
	order := make([]int64, 0, len(run.Trace))
	for _, ev := range run.Trace {
		if name, sub, ok := ev.Chan.ArrayName(); ok && name == "work" {
			order = append(order, sub)
		}
	}
	fmt.Printf("\nconcurrent run (%d goroutines): work order %v — strict round robin\n",
		run.LeafCount, order)
}
