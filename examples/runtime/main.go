// Runtime: what online monitoring buys you — and what partial correctness
// cannot see. Three versions of a tiny credit-based flow-control network
// run as goroutine networks with the invariant #sent <= #credit monitored:
//
//   - a correct one, where the invariant holds throughout;
//   - a violating one, caught by the monitor at the exact communication
//     that breaks the invariant (the operational reading of the paper's
//     "true before and after every communication");
//   - a deadlocking one, which the invariant does NOT flag: it stops
//     having done nothing wrong — the paper's §4 limitation that partial
//     correctness "cannot prove that P will actually behave in the desired
//     way", since STOP satisfies every satisfiable assertion.
package main

import (
	"fmt"
	"log"

	"cspsat/internal/core"
)

const okSpec = `
-- Producer waits for one credit per message.
producer = credit?c:{1} -> sent!1 -> producer
consumer = credit!1 -> sent?x:{1} -> consumer
net = producer || consumer

assert net sat #sent <= #credit
`

const violatingSpec = `
-- Bug: the producer transmits before collecting a credit, and the
-- consumer is always willing to listen.
producer = sent!1 -> credit?c:{1} -> producer
consumer = sent?x:{1} -> consumer | credit!1 -> consumer
net = producer || consumer

assert net sat #sent <= #credit
`

const deadlockSpec = `
-- Bug: producer and consumer each insist on their own first step;
-- nothing can ever happen. The invariant holds vacuously.
producer = sent!1 -> credit?c:{1} -> producer
consumer = credit!1 -> sent?x:{1} -> consumer
net = producer || consumer

assert net sat #sent <= #credit
`

func run(title, spec string) {
	sys, err := core.Load(spec, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	decl := sys.Asserts[0]
	res, err := sys.RunMonitored("net", decl.A, 1, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: ran %d events\n", title, len(res.Events))
	switch {
	case res.MonitorErr != nil:
		fmt.Printf("  monitor caught it: %v\n", res.MonitorErr)
	case res.Quiescent:
		fmt.Printf("  network deadlocked after %s — and the invariant %q still holds,\n", res.Trace, decl.A)
		fmt.Printf("  which is exactly the paper's partial-correctness blind spot (§4)\n")
	default:
		fmt.Printf("  invariant %s held throughout %d events\n", decl.A, len(res.Events))
	}

	// The model checker sees the same stories at its bounded depth.
	check, err := sys.CheckAll(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  model check: %s\n\n", check[0].Result)
}

func main() {
	run("correct flow control", okSpec)
	run("violating flow control", violatingSpec)
	run("deadlocking flow control", deadlockSpec)
}
