// Nondeterminism: the paper's §4 self-criticism, made executable — and the
// conclusion's hoped-for fix, implemented.
//
// The paper admits two defects of its model:
//
//  1. partial correctness cannot see deadlock (STOP satisfies everything);
//  2. the prefix-closure model identifies STOP | P with P, so genuine
//     (internal, time-dependent) non-determinism is unrepresentable.
//
// This example shows both defects live in the trace model, then switches to
// the stable-failures model — the "more realistic model of non-determinism"
// the conclusion calls for — where internal choice (written |~|) becomes
// observable through refusals and deadlock potential is a checkable
// property.
package main

import (
	"fmt"
	"log"

	"cspsat/internal/core"
	"cspsat/internal/failures"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

const spec = `
copier = input?x:NAT -> wire!x -> copier

-- The paper's §4 example: "a process Q which may non-deterministically
-- decide on a path that leads to deadlock, or may decide to behave like
-- the process P". In the paper's model, Q = STOP | P "is identically
-- equal to P". With internal choice the distinction is expressible:
flaky  = STOP |~| copier
merged = STOP | copier
`

func main() {
	sys, err := core.Load(spec, core.Options{NatWidth: 2})
	if err != nil {
		log.Fatal(err)
	}
	copier, _ := sys.Proc("copier")
	flaky, _ := sys.Proc("flaky")
	merged, _ := sys.Proc("merged")
	const depth = 4

	// --- defect 1+2 in the trace model ---
	ck := sys.Checker(depth)
	eq1, err := ck.Equivalent(merged, copier)
	if err != nil {
		log.Fatal(err)
	}
	eq2, err := ck.Equivalent(flaky, copier)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace model (the paper's §3):")
	fmt.Printf("  STOP |  copier = copier ?  %v\n", eq1.OK)
	fmt.Printf("  STOP |~| copier = copier ?  %v   <- the §4 defect: even internal\n", eq2.OK)
	fmt.Println("                                      choice of deadlock is invisible")

	// --- the failures model tells them apart ---
	mc, err := failures.Compute(copier, sys.Env(), depth)
	if err != nil {
		log.Fatal(err)
	}
	mf, err := failures.Compute(flaky, sys.Env(), depth)
	if err != nil {
		log.Fatal(err)
	}
	mm, err := failures.Compute(merged, sys.Env(), depth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstable-failures model (the conclusion's hoped-for extension):")
	cex, err := failures.Equivalent(mm, mc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  STOP |  copier ≡F copier ?  %v   (external choice: STOP adds nothing)\n", cex == nil)
	cex, err = failures.Equivalent(mf, mc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  STOP |~| copier ≡F copier ?  %v\n", cex == nil)
	if cex != nil {
		fmt.Printf("      distinguished: %s\n", cex)
	}

	allInputs := []trace.Event{
		{Chan: "input", Msg: value.Int(0)},
		{Chan: "input", Msg: value.Int(1)},
	}
	fmt.Printf("  flaky may refuse every input initially: %v\n", mf.Refuses(nil, allInputs))
	fmt.Printf("  copier may refuse every input initially: %v\n", mc.Refuses(nil, allInputs))
	if tr, can := mf.CanDeadlock(); can {
		fmt.Printf("  flaky can deadlock (after %s); ", tr)
	}
	if _, can := mc.CanDeadlock(); !can {
		fmt.Println("copier cannot — now the model can say so")
	}
}
