// Benchmark harness: one benchmark per experiment E1–E14 of DESIGN.md §4
// (the paper's checkable claims), plus engine-scaling and ablation
// benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the outcomes next to the paper's statements.
package cspsat_test

import (
	"fmt"
	"testing"

	"cspsat/internal/assertion"
	"cspsat/internal/auto"
	"cspsat/internal/check"
	"cspsat/internal/closure"
	"cspsat/internal/failures"
	"cspsat/internal/laws"
	"cspsat/internal/model"
	"cspsat/internal/op"
	"cspsat/internal/paper"
	"cspsat/internal/parser"
	"cspsat/internal/proof"
	"cspsat/internal/proofs"
	"cspsat/internal/runtime"
	"cspsat/internal/sem"
	"cspsat/internal/syntax"
	"cspsat/internal/trace"
	"cspsat/internal/value"
)

func copyChecker(depth int) *check.Checker {
	return check.New(sem.NewEnv(paper.CopySystem(), 2), nil, depth)
}

func protoChecker(depth int) *check.Checker {
	return check.New(sem.NewEnv(paper.ProtocolSystem(2), 2), nil, depth)
}

func mustSat(b *testing.B, ck *check.Checker, name string, a assertion.A) {
	b.Helper()
	res, err := ck.Sat(syntax.Ref{Name: name}, a)
	if err != nil {
		b.Fatal(err)
	}
	if !res.OK {
		b.Fatalf("violated: %s", res)
	}
}

// --- E1–E4: the copier system's §2 claims ---

func BenchmarkE01CopierSat(b *testing.B) {
	ck := copyChecker(7)
	for i := 0; i < b.N; i++ {
		mustSat(b, ck, paper.NameCopier, paper.CopierSat())
	}
}

func BenchmarkE02CopierLenSat(b *testing.B) {
	ck := copyChecker(7)
	for i := 0; i < b.N; i++ {
		mustSat(b, ck, paper.NameCopier, paper.CopierLenSat())
	}
}

func BenchmarkE03RecopierSat(b *testing.B) {
	ck := copyChecker(7)
	for i := 0; i < b.N; i++ {
		mustSat(b, ck, paper.NameRecopier, paper.RecopierSat())
	}
}

func BenchmarkE04CopyNetworkSat(b *testing.B) {
	ck := copyChecker(7)
	for i := 0; i < b.N; i++ {
		mustSat(b, ck, paper.NameCopySys, paper.CopyNetSat())
	}
}

// --- E5–E7: the protocol, by proof and by model check ---

func BenchmarkE05SenderTable1Proof(b *testing.B) {
	prover := protocolProver()
	for i := 0; i < b.N; i++ {
		if _, err := prover.Check(proofs.SenderTable1Proof()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE05SenderSatCheck(b *testing.B) {
	ck := protoChecker(7)
	for i := 0; i < b.N; i++ {
		mustSat(b, ck, paper.NameSender, paper.SenderSat())
	}
}

func BenchmarkE06ReceiverProof(b *testing.B) {
	prover := protocolProver()
	for i := 0; i < b.N; i++ {
		if _, err := prover.Check(proofs.ReceiverProof()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE07ProtocolProofAndCheck(b *testing.B) {
	prover := protocolProver()
	ck := protoChecker(7)
	for i := 0; i < b.N; i++ {
		if _, err := prover.Check(proofs.ProtocolProof()); err != nil {
			b.Fatal(err)
		}
		mustSat(b, ck, paper.NameProtocol, paper.ProtocolSat())
	}
}

func protocolProver() *proof.Checker {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	c := proof.NewChecker(env, nil)
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	c.Validity = assertion.ValidityConfig{
		MaxLen: 3,
		ChanDom: map[string]value.Domain{
			"wire":   value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))},
			"input":  msgs,
			"output": msgs,
		},
		DefaultDom: msgs,
	}
	return c
}

// --- E8: the multiplier invariant ---

func BenchmarkE08MultiplierSat(b *testing.B) {
	env := sem.NewEnv(paper.MultiplierSystem([]int64{5, 3, 2}), 2)
	ck := check.New(env, nil, 7)
	for i := 0; i < b.N; i++ {
		res, err := ck.Sat(syntax.Ref{Name: paper.NameMultiplier}, paper.MultiplierSat())
		if err != nil || !res.OK {
			b.Fatalf("%v %v", res, err)
		}
	}
}

// --- E9: STOP satisfies any satisfiable assertion (emptiness rule) ---

func BenchmarkE09StopSatisfiesEverything(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	prover := proof.NewChecker(env, nil)
	prover.Validity = assertion.ValidityConfig{MaxLen: 3}
	ck := check.New(env, nil, 7)
	for i := 0; i < b.N; i++ {
		if _, err := prover.Check(proofs.StopSatExample()); err != nil {
			b.Fatal(err)
		}
		res, err := ck.Sat(syntax.Stop{}, paper.CopierSat())
		if err != nil || !res.OK {
			b.Fatalf("%v %v", res, err)
		}
	}
}

// --- E10: STOP | P = P in the trace model (§4 defect) ---

func BenchmarkE10StopChoiceIdentity(b *testing.B) {
	ck := copyChecker(6)
	copier := syntax.Ref{Name: paper.NameCopier}
	for i := 0; i < b.N; i++ {
		res, err := ck.Equivalent(syntax.Alt{L: syntax.Stop{}, R: copier}, copier)
		if err != nil || !res.OK {
			b.Fatalf("%v %v", res, err)
		}
	}
}

// --- E11: §3.1 closure-operator laws on concrete sets ---

func BenchmarkE11ClosureOps(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	left, err := op.Traces(syntax.Ref{Name: paper.NameCopier}, env, 8)
	if err != nil {
		b.Fatal(err)
	}
	right, err := op.Traces(syntax.Ref{Name: paper.NameRecopier}, env, 8)
	if err != nil {
		b.Fatal(err)
	}
	x := trace.NewSet("input", "wire")
	y := trace.NewSet("wire", "output")
	hidden := trace.NewSet("wire")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par := closure.Parallel(left, right, x, y)
		hid := closure.Hide(par, hidden)
		uni := closure.Union(left, right)
		if hid.Size() == 0 || uni.Size() == 0 {
			b.Fatal("degenerate closure result")
		}
	}
}

// --- E12: the §3.3 approximation chain vs the operational engine ---

func BenchmarkE12FixpointDenotation(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	p := syntax.Ref{Name: paper.NameCopySys}
	for i := 0; i < b.N; i++ {
		d := sem.NewDenoter(5)
		s, err := d.Denote(p, env)
		if err != nil || s.Size() == 0 {
			b.Fatalf("%v %v", s, err)
		}
	}
}

// --- E11/E12 cold-cache ablation: the same workloads with the closure
// interning and memo tables emptied every iteration, isolating how much of
// the steady-state numbers above the caches contribute. Custom metrics
// report the memo hit rate of the warm runs.

func BenchmarkE11ClosureOpsCold(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	x := trace.NewSet("input", "wire")
	y := trace.NewSet("wire", "output")
	hidden := trace.NewSet("wire")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		closure.ResetCaches()
		// Rebuild the operands too: their interned nodes died with the
		// caches, so reusing them would measure a half-warm hybrid.
		left, err := op.Traces(syntax.Ref{Name: paper.NameCopier}, env, 8)
		if err != nil {
			b.Fatal(err)
		}
		right, err := op.Traces(syntax.Ref{Name: paper.NameRecopier}, env, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		par := closure.Parallel(left, right, x, y)
		hid := closure.Hide(par, hidden)
		uni := closure.Union(left, right)
		if hid.Size() == 0 || uni.Size() == 0 {
			b.Fatal("degenerate closure result")
		}
	}
	reportCacheStats(b)
}

func BenchmarkE12FixpointDenotationCold(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	p := syntax.Ref{Name: paper.NameCopySys}
	for i := 0; i < b.N; i++ {
		closure.ResetCaches()
		d := sem.NewDenoter(5)
		s, err := d.Denote(p, env)
		if err != nil || s.Size() == 0 {
			b.Fatalf("%v %v", s, err)
		}
	}
	reportCacheStats(b)
}

// reportCacheStats attaches the closure-cache state as custom benchmark
// metrics (benchstat-friendly).
func reportCacheStats(b *testing.B) {
	s := closure.Stats()
	if total := s.MemoHits + s.MemoMisses; total > 0 {
		b.ReportMetric(float64(s.MemoHits)/float64(total), "memo-hit-rate")
	}
	b.ReportMetric(float64(s.InternedNodes), "interned-nodes")
}

// --- E13: ch(s) and the substitution lemmas' engine ---

func BenchmarkE13ChExtraction(b *testing.B) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	set, err := op.Traces(syntax.Ref{Name: paper.NameProtoNet}, env, 8)
	if err != nil {
		b.Fatal(err)
	}
	traces := set.Traces()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range traces {
			h := trace.Ch(t)
			if h == nil {
				b.Fatal("nil history")
			}
		}
	}
}

// --- E14: rule soundness — every machine proof's conclusion model-checks ---

func BenchmarkE14ProofsSoundness(b *testing.B) {
	copyProver := proof.NewChecker(sem.NewEnv(paper.CopySystem(), 2), nil)
	copyProver.Validity = assertion.ValidityConfig{MaxLen: 3}
	protoProver := protocolProver()
	copyCk := copyChecker(6)
	protoCk := protoChecker(6)
	for i := 0; i < b.N; i++ {
		for _, p := range []proof.Proof{proofs.CopierProof(), proofs.RecopierProof(), proofs.CopyNetworkProof()} {
			if _, err := copyProver.Check(p); err != nil {
				b.Fatal(err)
			}
		}
		for _, p := range []proof.Proof{proofs.SenderTable1Proof(), proofs.ReceiverProof(), proofs.ProtocolProof()} {
			if _, err := protoProver.Check(p); err != nil {
				b.Fatal(err)
			}
		}
		mustSat(b, copyCk, paper.NameCopySys, paper.CopyNetSat())
		mustSat(b, protoCk, paper.NameProtocol, paper.ProtocolSat())
	}
}

// --- Engine scaling ---

func BenchmarkTraceEnumDepth(b *testing.B) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	for _, depth := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := op.Traces(syntax.Ref{Name: paper.NameProtocol}, env, depth)
				if err != nil || s.Size() == 0 {
					b.Fatalf("%v %v", s, err)
				}
			}
		})
	}
}

func BenchmarkBufferChain(b *testing.B) {
	for _, n := range []int{1, 2, 3, 4} {
		m := paper.BufferChain(n)
		env := sem.NewEnv(m, 2)
		a := assertion.PrefixLE(assertion.Chan("output"), assertion.Chan("input"))
		ck := check.New(env, nil, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ck.Sat(syntax.Ref{Name: paper.NameChainSys}, a)
				if err != nil || !res.OK {
					b.Fatalf("%v %v", res, err)
				}
			}
		})
	}
}

func BenchmarkRuntimeThroughput(b *testing.B) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	b.Run("protocol", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := runtime.Run(syntax.Ref{Name: paper.NameProtocol}, runtime.Config{
				Env: env, Seed: int64(i), MaxEvents: 200,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Events) == 0 {
				b.Fatal("no events")
			}
		}
		b.ReportMetric(200, "events/op")
	})
	menv := sem.NewEnv(paper.MultiplierSystem([]int64{5, 3, 2}), 2)
	b.Run("multiplier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := runtime.Run(syntax.Ref{Name: paper.NameMultiplier}, runtime.Config{
				Env: menv, Seed: int64(i), MaxEvents: 200,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Events) == 0 {
				b.Fatal("no events")
			}
		}
		b.ReportMetric(200, "events/op")
	})
}

func BenchmarkParserThroughput(b *testing.B) {
	srcs := []string{paper.CopierSpec, paper.ProtocolSpec, paper.MultiplierSpec}
	var bytes int
	for _, s := range srcs {
		bytes += len(s)
	}
	b.SetBytes(int64(bytes))
	for i := 0; i < b.N; i++ {
		for _, s := range srcs {
			if _, err := parser.Parse(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSimulatorWalk(b *testing.B) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	for i := 0; i < b.N; i++ {
		sim := op.NewSimulator(int64(i))
		if _, _, err := sim.Walk(op.NewState(syntax.Ref{Name: paper.NameProtocol}, env), 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoundedValidity(b *testing.B) {
	env := sem.NewEnv(syntax.NewModule(), 2)
	trans := assertion.Implies{
		L: assertion.And{
			L: assertion.PrefixLE(assertion.Chan("a"), assertion.Chan("b")),
			R: assertion.PrefixLE(assertion.Chan("b"), assertion.Chan("c")),
		},
		R: assertion.PrefixLE(assertion.Chan("a"), assertion.Chan("c")),
	}
	cfg := assertion.ValidityConfig{Env: env, MaxLen: 3}
	for i := 0; i < b.N; i++ {
		cex, err := assertion.Valid(trans, cfg)
		if err != nil || cex != nil {
			b.Fatalf("%v %v", cex, err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationOpVsDen compares the two trace engines at equal depth.
func BenchmarkAblationOpVsDen(b *testing.B) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	p := syntax.Ref{Name: paper.NameProtoNet}
	b.Run("operational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := op.Traces(p, env, 6); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("denotational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sem.Denote(p, env, 6); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNatWidth measures checking cost against the NAT sample
// width (the paper's infinite-domain substitution knob).
func BenchmarkAblationNatWidth(b *testing.B) {
	for _, w := range []int{1, 2, 3, 4} {
		env := sem.NewEnv(paper.CopySystem(), w)
		ck := check.New(env, nil, 7)
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ck.Sat(syntax.Ref{Name: paper.NameCopySys}, paper.CopyNetSat())
				if err != nil || !res.OK {
					b.Fatalf("%v %v", res, err)
				}
			}
		})
	}
}

// BenchmarkAblationValidityMaxLen measures obligation-discharge cost
// against the bounded-validity history length.
func BenchmarkAblationValidityMaxLen(b *testing.B) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	msgs := value.Domain(value.IntRange{Lo: 0, Hi: 1})
	for _, maxLen := range []int{2, 3, 4} {
		prover := proof.NewChecker(env, nil)
		prover.Validity = assertion.ValidityConfig{
			MaxLen: maxLen,
			ChanDom: map[string]value.Domain{
				"wire":   value.Union{A: msgs, B: value.NewEnum(value.Sym("ACK"), value.Sym("NACK"))},
				"input":  msgs,
				"output": msgs,
			},
			DefaultDom: msgs,
		}
		b.Run(fmt.Sprintf("maxlen=%d", maxLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prover.Check(proofs.SenderTable1Proof()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWalkVsTraces compares the incremental WalkDFS checking
// path against materialising and sorting all traces first.
func BenchmarkAblationWalkVsTraces(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	set, err := op.Traces(syntax.Ref{Name: paper.NameCopyNet}, env, 9)
	if err != nil {
		b.Fatal(err)
	}
	a := paper.CopyNetSat()
	funcs := assertion.NewRegistry()
	b.Run("walkdfs-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hist := make(trace.History)
			ctx := assertion.NewCtx(env, hist, funcs)
			bad := false
			set.WalkDFS(func(path trace.T) bool {
				ok, err := assertion.Eval(a, ctx)
				if err != nil || !ok {
					bad = true
					return false
				}
				return true
			},
				func(ev trace.Event) { hist[ev.Chan] = append(hist[ev.Chan], ev.Msg) },
				func(ev trace.Event) { hist[ev.Chan] = hist[ev.Chan][:len(hist[ev.Chan])-1] })
			if bad {
				b.Fatal("violation")
			}
		}
	})
	b.Run("materialise-and-ch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range set.Traces() {
				ctx := assertion.NewCtx(env, trace.Ch(t), funcs)
				ok, err := assertion.Eval(a, ctx)
				if err != nil || !ok {
					b.Fatal("violation")
				}
			}
		}
	})
}

// --- E15 (extension): the §4 defect and its resolution in failures ---

func BenchmarkE15FailuresModel(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	copier := syntax.Ref{Name: paper.NameCopier}
	flaky := syntax.IChoice{L: syntax.Stop{}, R: copier}
	for i := 0; i < b.N; i++ {
		mc, err := failures.Compute(copier, env, 4)
		if err != nil {
			b.Fatal(err)
		}
		mf, err := failures.Compute(flaky, env, 4)
		if err != nil {
			b.Fatal(err)
		}
		cex, err := failures.Equivalent(mf, mc)
		if err != nil {
			b.Fatal(err)
		}
		if cex == nil {
			b.Fatal("failures model must distinguish STOP |~| P from P")
		}
	}
}

// E20: the failures-refinement backend end-to-end — both acceptance-family
// models plus the refinement scan, through the same Checker path cspcheck
// -model failures and /v1/refine use. The negative direction (flaky
// against copier) is the expensive one: the scan cannot stop at trace
// inclusion, it must compare acceptance families.
func BenchmarkE20FailuresRefine(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	ck := check.New(env, nil, 4)
	ck.Model = model.Failures
	copier := syntax.Ref{Name: paper.NameCopier}
	flaky := syntax.IChoice{L: syntax.Stop{}, R: copier}
	b.Run("holds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ck.Refines(copier, flaky)
			if err != nil {
				b.Fatal(err)
			}
			if !res.OK {
				b.Fatalf("copier ⊑F STOP |~| copier must hold: %s", res)
			}
		}
	})
	b.Run("refuted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ck.Refines(flaky, copier)
			if err != nil {
				b.Fatal(err)
			}
			if res.OK || res.Failure == nil {
				b.Fatal("STOP |~| copier ⊑F copier must fail with a counterexample failure")
			}
		}
	})
}

func BenchmarkFailuresProtocolVsBuffer(b *testing.B) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	for i := 0; i < b.N; i++ {
		m, err := failures.Compute(syntax.Ref{Name: paper.NameProtocol}, env, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, can := m.CanDeadlock(); can {
			b.Fatal("protocol deadlocked")
		}
	}
}

// --- Automatic proof synthesis (internal/auto) ---

func BenchmarkAutoProveTable1(b *testing.B) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	prover := protocolProver()
	goals := []auto.Goal{
		{Name: paper.NameSender, A: paper.SenderSat()},
		{Name: paper.NameQ, A: paper.QSat()},
	}
	for i := 0; i < b.N; i++ {
		pr, err := auto.Recursive(env, goals)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prover.Check(pr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Deadlock search (the §4 complement) ---

func BenchmarkDeadlockSearch(b *testing.B) {
	env := sem.NewEnv(paper.ProtocolSystem(2), 2)
	st := op.NewState(syntax.Ref{Name: paper.NameProtocol}, env)
	for i := 0; i < b.N; i++ {
		dls, err := op.FindDeadlocks(st, 6)
		if err != nil {
			b.Fatal(err)
		}
		if len(dls) != 0 {
			b.Fatal("protocol deadlocked")
		}
	}
}

// --- The trace-algebra law catalogue ---

func BenchmarkLawsCatalogue(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	pool := []syntax.Proc{
		syntax.Stop{},
		syntax.Ref{Name: paper.NameCopier},
		syntax.Ref{Name: paper.NameRecopier},
	}
	for i := 0; i < b.N; i++ {
		if err := laws.CheckAll(env, pool, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Symbol layer: the interning and bitset hot paths the closure engine
// is built on. SymbolInternWarm is the per-edge cost every trie operation
// pays; BitsetAlphabetOps is the per-node cost of Hide/Parallel membership
// probes; UnionAllWide is the k-way merge against its pairwise fold.

func BenchmarkSymbolInternWarm(b *testing.B) {
	e := trace.Event{Chan: "bench_sym", Msg: value.Int(1)}
	e.ID() // intern once; the loop measures the steady state
	c := trace.Chan("bench_sym")
	c.ID()
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += uint64(e.ID()) + uint64(c.ID())
	}
	benchSink = sink
}

// benchSink defeats dead-code elimination of pure id lookups.
var benchSink uint64

func BenchmarkBitsetAlphabetOps(b *testing.B) {
	x := trace.NewSet("input", "wire", "ack")
	y := trace.NewSet("wire", "output")
	cid := trace.Chan("wire").ID()
	x.ID()
	y.ID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := x.Union(y)
		if !x.ContainsID(cid) || !u.ContainsID(cid) || x.Intersect(y).Len() != 1 {
			b.Fatal("bitset algebra broken")
		}
		if x.ID() == y.ID() {
			b.Fatal("distinct alphabets share an id")
		}
	}
}

func BenchmarkUnionAllWide(b *testing.B) {
	env := sem.NewEnv(paper.CopySystem(), 2)
	var sets []*closure.Set
	for _, name := range []string{paper.NameCopier, paper.NameRecopier, paper.NameCopySys} {
		for depth := 3; depth <= 8; depth++ {
			s, err := op.Traces(syntax.Ref{Name: name}, env, depth)
			if err != nil {
				b.Fatal(err)
			}
			sets = append(sets, s)
		}
	}
	b.Run("kway", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if closure.UnionAll(sets...).Size() == 0 {
				b.Fatal("empty union")
			}
		}
	})
	b.Run("fold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := closure.Stop()
			for _, s := range sets {
				acc = closure.Union(acc, s)
			}
			if acc.Size() == 0 {
				b.Fatal("empty union")
			}
		}
	})
}
