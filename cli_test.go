package cspsat_test

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end tests of the command-line tools: each binary is built once
// into a temporary directory and driven against the specs/ files, checking
// exit codes and the load-bearing lines of output. These are the tests a
// downstream user's shell session relies on.

var cliTools = []string{"cspcheck", "csptrace", "cspsim", "cspproof", "cspprove", "cspeq", "cspi", "cspexperiments", "cspserved"}

// buildTools compiles every cmd/ tool once per test binary run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range cliTools {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func run(t *testing.T, bin string, stdin string, args ...string) (string, int) {
	t.Helper()
	// CSP_TEST_WORKERS reruns the whole CLI suite with the tools' worker
	// pools on (CI does this under -race); the flag is uniform across the
	// tools and must not change any pinned output below.
	if w := os.Getenv("CSP_TEST_WORKERS"); w != "" {
		args = append([]string{"-workers", w}, args...)
	}
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := buildTools(t)
	bin := func(name string) string { return filepath.Join(dir, name) }

	t.Run("cspcheck protocol", func(t *testing.T) {
		out, code := run(t, bin("cspcheck"), "", "-depth", "7", "specs/protocol.csp")
		if code != 0 || strings.Contains(out, "FAIL") {
			t.Fatalf("code=%d\n%s", code, out)
		}
		if strings.Count(out, "OK") != 4 {
			t.Errorf("want 4 OK lines:\n%s", out)
		}
	})

	t.Run("cspcheck catches violations", func(t *testing.T) {
		spec := filepath.Join(t.TempDir(), "bad.csp")
		if err := os.WriteFile(spec, []byte("p = a!1 -> p\nassert p sat #a <= 1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		out, code := run(t, bin("cspcheck"), "", "-depth", "4", spec)
		if code != 1 || !strings.Contains(out, "counterexample") {
			t.Fatalf("code=%d\n%s", code, out)
		}
	})

	t.Run("cspcheck deadlocks", func(t *testing.T) {
		out, code := run(t, bin("cspcheck"), "", "-depth", "6", "-deadlocks", "specs/buffers.csp")
		if code != 0 || !strings.Contains(out, "deadlock-free") {
			t.Fatalf("code=%d\n%s", code, out)
		}
	})

	t.Run("cspcheck model axis on nondet.csp", func(t *testing.T) {
		// Traces model: the refusal-level asserts hold vacuously; only the
		// model-pinned refinement assert fails (it is checked under
		// failures whatever -model says), so the exit status is 1.
		out, code := run(t, bin("cspcheck"), "", "specs/nondet.csp")
		if code != 1 {
			t.Fatalf("code=%d\n%s", code, out)
		}
		if !strings.Contains(out, "vacuous under traces model") {
			t.Errorf("vacuity note missing:\n%s", out)
		}
		if strings.Contains(out, "DEADLOCK") {
			t.Errorf("traces model must not see the deadlock:\n%s", out)
		}
		// Failures model: the deadlock hiding in flaky surfaces as an
		// empty acceptance, and the unpinned refinement assert fails too.
		out, code = run(t, bin("cspcheck"), "", "-model", "failures", "specs/nondet.csp")
		if code != 1 {
			t.Fatalf("failures: code=%d\n%s", code, out)
		}
		if !strings.Contains(out, "DEADLOCK after <>") {
			t.Errorf("failures model missed the deadlock:\n%s", out)
		}
		if strings.Contains(out, "FAIL  assert vend sat deadlockfree") {
			t.Errorf("vend should be deadlock-free under failures:\n%s", out)
		}
		// Unknown model names are usage errors.
		if _, code := run(t, bin("cspcheck"), "", "-model", "nope", "specs/nondet.csp"); code != 2 {
			t.Errorf("unknown -model: exit %d, want 2", code)
		}
	})

	t.Run("cspprove rejects non-trace models", func(t *testing.T) {
		out, code := run(t, bin("cspprove"), "", "-model", "failures", "specs/copier.csp")
		if code != 2 || !strings.Contains(out, "trace-model calculus") {
			t.Fatalf("code=%d\n%s", code, out)
		}
	})

	t.Run("csptrace", func(t *testing.T) {
		out, code := run(t, bin("csptrace"), "", "-depth", "3", "specs/copier.csp", "copier")
		if code != 0 || !strings.Contains(out, "<input.0, wire.0>") {
			t.Fatalf("code=%d\n%s", code, out)
		}
		out, code = run(t, bin("csptrace"), "", "-den", "-depth", "3", "specs/copier.csp", "copier")
		if code != 0 || !strings.Contains(out, "approximation chain stabilised") {
			t.Fatalf("denotational: code=%d\n%s", code, out)
		}
		out, code = run(t, bin("csptrace"), "", "-dot", "-depth", "3", "specs/copier.csp", "copysys")
		if code != 0 || !strings.Contains(out, "digraph lts") {
			t.Fatalf("dot: code=%d\n%s", code, out)
		}
		// -engine denote is the uniform spelling of the deprecated -den.
		out, code = run(t, bin("csptrace"), "", "-engine", "denote", "-depth", "3", "specs/copier.csp", "copier")
		if code != 0 || !strings.Contains(out, "approximation chain stabilised") {
			t.Fatalf("-engine denote: code=%d\n%s", code, out)
		}
		// -model failures lists acceptance families; flaky's deadlock is
		// the empty acceptance {} after the empty trace.
		out, code = run(t, bin("csptrace"), "", "-model", "failures", "-depth", "3", "specs/nondet.csp", "flaky")
		if code != 0 || !strings.Contains(out, "acceptance families") {
			t.Fatalf("-model failures: code=%d\n%s", code, out)
		}
		if !strings.Contains(out, "{}") {
			t.Errorf("flaky's empty acceptance missing:\n%s", out)
		}
	})

	t.Run("cspsim", func(t *testing.T) {
		out, code := run(t, bin("cspsim"), "", "-events", "12", "-seed", "3", "specs/protocol.csp", "protocol")
		if code != 0 || !strings.Contains(out, "monitoring: output <= input") {
			t.Fatalf("code=%d\n%s", code, out)
		}
	})

	t.Run("cspproof", func(t *testing.T) {
		out, code := run(t, bin("cspproof"), "")
		if code != 0 || strings.Count(out, "ok   ") < 10 {
			t.Fatalf("code=%d\n%s", code, out)
		}
		out, code = run(t, bin("cspproof"), "", "-which", "protocol", "-show")
		if code != 0 || !strings.Contains(out, "[recursion") {
			t.Fatalf("show: code=%d\n%s", code, out)
		}
	})

	t.Run("cspprove proves both paper specs", func(t *testing.T) {
		for _, spec := range []string{"specs/copier.csp", "specs/protocol.csp"} {
			out, code := run(t, bin("cspprove"), "", spec)
			if code != 0 || strings.Contains(out, "FAIL") {
				t.Fatalf("%s: code=%d\n%s", spec, code, out)
			}
		}
	})

	t.Run("cspeq distinguishes internal choice", func(t *testing.T) {
		spec := filepath.Join(t.TempDir(), "ic.csp")
		src := "copier = input?x:NAT -> wire!x -> copier\nmaybe = STOP |~| copier\n"
		if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		out, code := run(t, bin("cspeq"), "", "-depth", "3", "-nat", "2", spec, "maybe", "copier")
		if code != 0 {
			t.Fatalf("code=%d\n%s", code, out)
		}
		if !strings.Contains(out, "trace-equivalent") {
			t.Errorf("trace equivalence missing:\n%s", out)
		}
		if !strings.Contains(out, "maybe ⊑ copier FAILS") {
			t.Errorf("failures distinction missing:\n%s", out)
		}
		if !strings.Contains(out, "maybe can deadlock") {
			t.Errorf("deadlock report missing:\n%s", out)
		}
	})

	t.Run("cspi scripted session", func(t *testing.T) {
		script := "1\n:trace\n:quit\n"
		out, code := run(t, bin("cspi"), script, "specs/copier.csp", "copier")
		if code != 0 || !strings.Contains(out, "input.0") {
			t.Fatalf("code=%d\n%s", code, out)
		}
	})

	t.Run("cspexperiments regenerates the table", func(t *testing.T) {
		out, code := run(t, bin("cspexperiments"), "", "-depth", "6")
		if code != 0 {
			t.Fatalf("code=%d\n%s", code, out)
		}
		for _, id := range []string{"E1 ", "E7 ", "E15", "E18"} {
			if !strings.Contains(out, id) {
				t.Errorf("row %s missing:\n%s", id, out)
			}
		}
		if strings.Contains(out, "FAIL") {
			t.Fatalf("experiment failed:\n%s", out)
		}
		// Single-experiment selection.
		out, code = run(t, bin("cspexperiments"), "", "-only", "E10")
		if code != 0 || strings.Count(out, "\n") != 1 {
			t.Fatalf("-only: code=%d\n%s", code, out)
		}
	})

	t.Run("usage errors exit 2", func(t *testing.T) {
		for _, tool := range cliTools {
			if tool == "cspproof" || tool == "cspexperiments" || tool == "cspserved" {
				continue // take no file arguments; no-args is a valid run
			}
			_, code := run(t, bin(tool), "")
			if code != 2 {
				t.Errorf("%s with no args: exit %d, want 2", tool, code)
			}
		}
	})

	t.Run("stats survive a failing run", func(t *testing.T) {
		// Fail/Fatal used to os.Exit before the -stats report, so the runs
		// that most need cache diagnostics — the failing ones — lost them.
		spec := filepath.Join(t.TempDir(), "bad.csp")
		if err := os.WriteFile(spec, []byte("p = a!1 -> p\nassert p sat #a <= 1\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		out, code := run(t, bin("cspcheck"), "", "-stats", "-depth", "4", spec)
		if code != 1 {
			t.Fatalf("code=%d\n%s", code, out)
		}
		if !strings.Contains(out, "closure caches:") {
			t.Fatalf("-stats report missing from failing run:\n%s", out)
		}
	})

	t.Run("timeout reports the deadline", func(t *testing.T) {
		// The multiplier's data-carrying states defeat the memo; depth 12
		// runs for seconds, so a 100ms budget always expires mid-run — and
		// the error must say so, not just "canceled".
		out, code := run(t, bin("csptrace"), "", "-timeout", "100ms", "-depth", "12", "specs/multiplier.csp", "multiplier")
		if code != 1 {
			t.Fatalf("code=%d\n%s", code, out)
		}
		if !strings.Contains(out, "run deadline exceeded") {
			t.Fatalf("timeout expiry not named in error:\n%s", out)
		}
	})

	t.Run("interrupt reports the signal", func(t *testing.T) {
		cmd := exec.Command(bin("csptrace"), "-depth", "12", "specs/multiplier.csp", "multiplier")
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(300 * time.Millisecond) // mid-exploration
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
		err := cmd.Wait()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("err=%v\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "run interrupted") {
			t.Fatalf("interrupt not named in error:\n%s", out.String())
		}
	})

	t.Run("cspserved boots, serves, drains on SIGTERM", func(t *testing.T) {
		cmd := exec.Command(bin("cspserved"), "-addr", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill()

		// The first stdout line names the bound address.
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			t.Fatalf("no startup line; stderr:\n%s", stderr.String())
		}
		line := sc.Text()
		i := strings.Index(line, "http://")
		j := strings.Index(line, " (")
		if i < 0 || j < i {
			t.Fatalf("unparseable startup line: %q", line)
		}
		base := line[i:j]

		body := `{"source": "p = a!1 -> p\nassert p sat 0 <= #a\n", "depth": 4}`
		resp, err := http.Post(base+"/v1/check", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(payload), `"ok":true`) {
			t.Fatalf("check: %d %s", resp.StatusCode, payload)
		}

		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("exit after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
		if !strings.Contains(stderr.String(), "drained, exiting") {
			t.Fatalf("drain not reported:\n%s", stderr.String())
		}
	})
}
