// Package cspsat reproduces, as a working Go library, the system of
// Zhou Chao Chen and C. A. R. Hoare's "Partial Correctness of Communicating
// Sequential Processes" (PRG, Oxford, 1980/81; ICDCS 1981): the process
// notation of §1, the sat-assertion language and ten inference rules of §2,
// and the prefix-closure trace model of §3, together with a parser for the
// notation, a model checker, a machine-checked encoding of every proof in
// the paper, and a concurrent runtime that executes process networks as
// goroutines with true rendezvous and online sat-monitoring.
//
// The implementation lives under internal/; see README.md for the tour,
// DESIGN.md for the architecture and the paper-to-code map, and
// EXPERIMENTS.md for the per-claim reproduction record. The benchmark
// harness regenerating every experiment is bench_test.go in this directory.
package cspsat
