// E13/E14 parallel-engine scaling benchmarks: the worker-pool explorer and
// the Jacobi-parallel denoter across a GOMAXPROCS 1/4/8 matrix, with the
// closure caches emptied every iteration so each measurement is a real
// exploration rather than a memo replay. EXPERIMENTS.md records the
// outcomes; on a 1-CPU machine the >1-proc rows measure scheduling
// overhead only.
package cspsat_test

import (
	"context"
	"fmt"
	"os"
	goruntime "runtime"
	"testing"

	"cspsat/internal/closure"
	"cspsat/pkg/csp"
)

// parallelWorkloads names the spec roots the scaling benchmarks explore:
// the token ring (wide frontier, deep hiding) and the dining philosophers
// (large interleaving product).
var parallelWorkloads = []struct {
	file, root string
	depth      int
}{
	{"specs/tokenring.csp", "sys", 6},
	{"specs/philosophers.csp", "safe", 5},
}

func loadBenchModule(b *testing.B, path string) *csp.Module {
	b.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := csp.Load(context.Background(), string(data), csp.Options{NatWidth: 2})
	if err != nil {
		b.Fatal(err)
	}
	return mod
}

func BenchmarkE13ParallelExplore(b *testing.B) {
	for _, w := range parallelWorkloads {
		mod := loadBenchModule(b, w.file)
		p, err := mod.Proc(w.root)
		if err != nil {
			b.Fatal(err)
		}
		for _, procs := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/procs=%d", w.root, procs), func(b *testing.B) {
				defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(procs))
				opts := csp.EngineOptions{Engine: csp.EngineOp, Depth: w.depth, Workers: procs}
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					closure.ResetCaches()
					b.StartTimer()
					res, err := mod.Traces(context.Background(), p, opts)
					if err != nil || res.Set.Size() == 0 {
						b.Fatalf("%v %v", res, err)
					}
				}
				reportCacheStats(b)
			})
		}
	}
}

func BenchmarkE14ParallelFixpoint(b *testing.B) {
	for _, w := range parallelWorkloads {
		mod := loadBenchModule(b, w.file)
		p, err := mod.Proc(w.root)
		if err != nil {
			b.Fatal(err)
		}
		depth := w.depth - 1 // the literal chain materialises pre-hiding sets
		for _, procs := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/procs=%d", w.root, procs), func(b *testing.B) {
				defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(procs))
				opts := csp.EngineOptions{Engine: csp.EngineDenote, Depth: depth, Workers: procs}
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					closure.ResetCaches()
					b.StartTimer()
					res, err := mod.Traces(context.Background(), p, opts)
					if err != nil || res.Set.Size() == 0 {
						b.Fatalf("%v %v", res, err)
					}
				}
				reportCacheStats(b)
			})
		}
	}
}
