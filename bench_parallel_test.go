// E13/E14 parallel-engine scaling benchmarks: the worker-pool explorer and
// the Jacobi-parallel denoter across a GOMAXPROCS 1/4/8 matrix, with the
// closure caches emptied every iteration so each measurement is a real
// exploration, not a memo replay. The multi-megabyte workloads also force
// a collection per iteration (outside the timer) so every op starts from
// a uniform heap instead of the GC trigger point the previous row left
// behind (twice: the second cycle forces the first's lazy sweep to
// finish, so no sweep debt bleeds into the timed region — at 8 Ps that
// debt is systematically larger and would bias the high-proc rows);
// the microsecond workloads deliberately do not — a forced GC's
// sweep debt is comparable to the op itself there and would distort the
// timed region, while thousands of iterations self-equilibrate anyway.
// The gc flag on each workload records that choice — plus the E16/E17 width-N matrix
// over gen.Philosophers/gen.TokenRing, wide enough to show real scaling.
// EXPERIMENTS.md records the outcomes. On a 1-CPU machine the >1-proc rows
// of the small workloads measure scheduling overhead (the adaptive cutover
// must keep them flat), while the wide rows still speed up: the parallel
// path's level-synchronised BFS expands each state once instead of once
// per (state, budget) pair, an algorithmic win independent of core count.
package cspsat_test

import (
	"context"
	"fmt"
	"os"
	goruntime "runtime"
	"runtime/debug"
	"testing"

	"cspsat/internal/closure"
	"cspsat/internal/gen"
	"cspsat/pkg/csp"
)

// parallelWorkloads names the spec roots the scaling benchmarks explore:
// the token ring (wide frontier, deep hiding) and the dining philosophers
// (large interleaving product).
var parallelWorkloads = []struct {
	file, root string
	depth      int
	gc         bool
}{
	{"specs/tokenring.csp", "sys", 6, false},
	{"specs/philosophers.csp", "safe", 5, true},
}

func loadBenchModule(b *testing.B, path string) *csp.Module {
	b.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := csp.Load(context.Background(), string(data), csp.Options{NatWidth: 2})
	if err != nil {
		b.Fatal(err)
	}
	return mod
}

func BenchmarkE13ParallelExplore(b *testing.B) {
	for _, w := range parallelWorkloads {
		mod := loadBenchModule(b, w.file)
		p, err := mod.Proc(w.root)
		if err != nil {
			b.Fatal(err)
		}
		for _, procs := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/procs=%d", w.root, procs), func(b *testing.B) {
				defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(procs))
				b.StopTimer()
				debug.FreeOSMemory() // drop span/RSS state inherited from earlier rows
				b.StartTimer()
				opts := csp.EngineOptions{Engine: csp.EngineOp, Depth: w.depth, Workers: procs}
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					closure.ResetCaches()
					if w.gc {
						goruntime.GC()
						goruntime.GC()
					}
					b.StartTimer()
					res, err := mod.Traces(context.Background(), p, opts)
					if err != nil || res.Set.Size() == 0 {
						b.Fatalf("%v %v", res, err)
					}
				}
				reportCacheStats(b)
			})
		}
	}
}

// wideWorkloads is the width-N scaling matrix: parameterised specs big
// enough that the parallel explorer must beat the serial recursion
// outright (the acceptance bar is ≥2× at 8 procs on the width-4
// philosophers), plus a deliberately narrow wide-ring row pinning that
// the adaptive cutover keeps near-serial cost when the frontier never
// widens.
var wideWorkloads = []struct {
	name, src, root string
	depth           int
	gc              bool
}{
	{"philosophers/N=4", gen.Philosophers(4), "safe", 9, true},
	{"tokenring/N=8", gen.TokenRing(8), "sys", 8, false},
}

func BenchmarkE16WideExplore(b *testing.B) {
	for _, w := range wideWorkloads {
		mod, err := csp.Load(context.Background(), w.src, csp.Options{NatWidth: 2})
		if err != nil {
			b.Fatal(err)
		}
		p, err := mod.Proc(w.root)
		if err != nil {
			b.Fatal(err)
		}
		for _, procs := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/procs=%d", w.name, procs), func(b *testing.B) {
				defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(procs))
				b.StopTimer()
				debug.FreeOSMemory() // drop span/RSS state inherited from earlier rows
				b.StartTimer()
				opts := csp.EngineOptions{Engine: csp.EngineOp, Depth: w.depth, Workers: procs}
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					closure.ResetCaches()
					if w.gc {
						goruntime.GC()
						goruntime.GC()
					}
					b.StartTimer()
					res, err := mod.Traces(context.Background(), p, opts)
					if err != nil || res.Set.Size() == 0 {
						b.Fatalf("%v %v", res, err)
					}
				}
				reportCacheStats(b)
			})
		}
	}
}

// BenchmarkE17AutoWorkers runs the same wide matrix through WorkersAuto —
// the -workers auto path: machine-sized pools behind the adaptive
// cutover. Its rows should track the best explicit row of E16 on wide
// workloads and the procs=1 row on narrow ones.
func BenchmarkE17AutoWorkers(b *testing.B) {
	for _, w := range wideWorkloads {
		mod, err := csp.Load(context.Background(), w.src, csp.Options{NatWidth: 2})
		if err != nil {
			b.Fatal(err)
		}
		p, err := mod.Proc(w.root)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.name, func(b *testing.B) {
			defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(8))
			b.StopTimer()
			debug.FreeOSMemory() // drop span/RSS state inherited from earlier rows
			b.StartTimer()
			opts := csp.EngineOptions{Engine: csp.EngineOp, Depth: w.depth, Workers: csp.WorkersAuto}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				closure.ResetCaches()
				if w.gc {
					goruntime.GC()
					goruntime.GC()
				}
				b.StartTimer()
				res, err := mod.Traces(context.Background(), p, opts)
				if err != nil || res.Set.Size() == 0 {
					b.Fatalf("%v %v", res, err)
				}
			}
			reportCacheStats(b)
		})
	}
}

func BenchmarkE14ParallelFixpoint(b *testing.B) {
	for _, w := range parallelWorkloads {
		mod := loadBenchModule(b, w.file)
		p, err := mod.Proc(w.root)
		if err != nil {
			b.Fatal(err)
		}
		depth := w.depth - 1 // the literal chain materialises pre-hiding sets
		for _, procs := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/procs=%d", w.root, procs), func(b *testing.B) {
				defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(procs))
				b.StopTimer()
				debug.FreeOSMemory() // drop span/RSS state inherited from earlier rows
				b.StartTimer()
				opts := csp.EngineOptions{Engine: csp.EngineDenote, Depth: depth, Workers: procs}
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					closure.ResetCaches()
					if w.gc {
						goruntime.GC()
						goruntime.GC()
					}
					b.StartTimer()
					res, err := mod.Traces(context.Background(), p, opts)
					if err != nil || res.Set.Size() == 0 {
						b.Fatalf("%v %v", res, err)
					}
				}
				reportCacheStats(b)
			})
		}
	}
}
